//! The scenario engine: declarative experiment specs executed on the
//! simulator.
//!
//! The paper's contribution is scenario *coverage* — it dissects chained-BFT
//! protocols under contention, faults and network fluctuation. A
//! [`Scenario`] turns each such experiment into a data file instead of a
//! hand-coded Rust harness: a JSON spec (parsed with the in-tree
//! [`bamboo_types::Json`] parser) describing
//!
//! * the **topology** — regions with intra/inter-region delay distributions
//!   and per-link (possibly asymmetric) overrides ([`Topology`]),
//! * the **protocols** under test, the cluster size and the workload,
//! * the **Byzantine strategy** and a **fault schedule** — crash/recover at
//!   a time or view, rolling leader failure, (oscillating) partitions,
//!   fluctuation windows, slow nodes, heterogeneous per-node CPU,
//! * the run length, seed, engine `threads` (simulation shards) and a set
//!   of declarative **expectations**.
//!
//! Executing a scenario compiles the spec into `(Config, RunOptions)` pairs
//! — one per protocol — runs them through [`SimRunner`] (twice, to prove the
//! replay is deterministic), and produces a [`ScenarioReport`]: throughput,
//! latency percentiles, chain growth, auth rejections and the ledger
//! fingerprint per protocol, plus a list of failures (safety violations,
//! fork/fingerprint mismatches, unmet expectations). The `scenario` bench
//! binary runs a whole directory of specs on the parallel sweep pool and
//! exits non-zero on any failure — the CI gate.
//!
//! Scenarios carry two measurement windows: the full `runtime_ms` used by
//! the nightly sweep and a shorter `quick_runtime_ms` used by the gating
//! `--quick` tier. In quick mode every *time-based* fault window is scaled
//! by `quick_runtime / runtime`, so the schedule keeps its shape;
//! view-triggered boundaries are left untouched.

use bamboo_sim::{DelayDist, FluctuationWindow, LinkFault, Topology};
use bamboo_types::{
    ByzantineStrategy, Config, Json, LeaderPolicy, NodeId, ProtocolKind, SimDuration, SimTime,
    ToJson, View,
};

use crate::metrics::RunReport;
use crate::runner::{FaultTrigger, NodeFault, RunOptions, SimRunner};
use crate::storage::StorageFault;

/// When a spec-level fault boundary fires: at a (scalable) time or a view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TriggerSpec {
    /// At this offset from the start of the run (scaled in quick mode).
    At(SimDuration),
    /// When the cluster first reaches this view (never scaled).
    AtView(View),
}

/// One entry of the spec's fault schedule, before tier-specific compilation.
#[derive(Clone, Debug)]
enum FaultSpec {
    /// Crash `node` (optionally recovering later). With `amnesia` the node
    /// loses all volatile state at recovery and must restart from its latest
    /// checkpoint plus state transfer. With `durable` (spec kinds
    /// `"durable_restart"` and `"torn_log"`) it instead replays its durable
    /// segment log — optionally after `storage_fault` mangled the log at the
    /// crash point — and state-transfers only the tail.
    Crash {
        node: NodeId,
        at: TriggerSpec,
        recover: Option<TriggerSpec>,
        amnesia: bool,
        durable: bool,
        storage_fault: Option<StorageFault>,
    },
    /// Rolling leader failure: starting at `from`, crash replica
    /// `i mod nodes` during the `i`-th window of `period`, until `until` —
    /// under round-robin election this tracks the leader rotation, so some
    /// window always hits a (past or incoming) leader.
    RollingLeader {
        from: SimDuration,
        until: SimDuration,
        period: SimDuration,
    },
    /// Static partition: `group` vs. the rest during the window.
    Partition {
        members: u64,
        from: SimDuration,
        until: SimDuration,
    },
    /// Oscillating partition: the cut is active during every other
    /// `period`-wide window between `from` and `until` (starting active).
    Oscillating {
        members: u64,
        from: SimDuration,
        until: SimDuration,
        period: SimDuration,
    },
    /// Network fluctuation: every link gains uniform extra delay in
    /// `[min_extra, max_extra]` during the window.
    Fluctuation {
        from: SimDuration,
        until: SimDuration,
        min_extra: SimDuration,
        max_extra: SimDuration,
    },
    /// Fixed extra delay on everything `node` sends during the window.
    SlowNode {
        node: NodeId,
        extra: SimDuration,
        from: SimDuration,
        until: SimDuration,
    },
}

/// Declarative pass/fail conditions evaluated against the runs.
#[derive(Clone, Debug, Default)]
pub struct Expectations {
    /// Minimum committed throughput (tx/s), per protocol.
    pub min_throughput_tx_per_sec: Option<f64>,
    /// Maximum p99 end-to-end latency (ms), per protocol.
    pub max_p99_latency_ms: Option<f64>,
    /// Minimum chain growth rate (committed blocks per view), per protocol.
    pub min_chain_growth_rate: Option<f64>,
    /// Minimum messages rejected at the authenticated ingress (attack
    /// scenarios assert the flood was actually fended off).
    pub min_auth_rejections: Option<u64>,
    /// Minimum transactions rejected by mempool admission control (overload
    /// scenarios assert the backpressure actually engaged).
    pub min_admission_rejections: Option<u64>,
    /// Ordered pairs `(faster, slower)`: the first protocol's mean commit
    /// latency must be strictly below the second's in this scenario.
    pub commit_latency_ordering: Vec<(ProtocolKind, ProtocolKind)>,
}

/// Which backend executes a scenario's runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScenarioTransport {
    /// The deterministic discrete-event simulator (the default).
    #[default]
    Sim,
    /// Loopback TCP sockets — real threads and real frames, driven by the
    /// `bamboo-net` crate. Wall-clock execution: no modelled topology, no
    /// injected faults, no determinism check; the scenario runner only
    /// asserts safety, agreement and liveness.
    Tcp,
}

/// A parsed, executable experiment spec.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Spec name (also the report key; unique within a directory).
    pub name: String,
    /// Free-text description echoed into the report.
    pub description: String,
    /// Protocols the scenario runs, in spec order.
    pub protocols: Vec<ProtocolKind>,
    /// Expectations evaluated against every run.
    pub expect: Expectations,
    base: Config,
    transport: ScenarioTransport,
    quick_runtime: SimDuration,
    /// Engine shards per run (the spec's `"threads"`; defaults to 1).
    threads: usize,
    topology: Option<Topology>,
    faults: Vec<FaultSpec>,
    cpu_overrides: Vec<(NodeId, SimDuration)>,
    wait_for_timeout_on_view_change: bool,
    synchronous_epochs: bool,
}

/// One protocol's result within a scenario.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// The protocol that produced this run.
    pub protocol: ProtocolKind,
    /// The full simulator report.
    pub report: RunReport,
    /// Whether an independent second run reproduced the ledger fingerprint.
    pub deterministic: bool,
}

/// The outcome of one scenario: per-protocol runs plus failures.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Spec description.
    pub description: String,
    /// Whether the quick tier ran (shortened windows).
    pub quick: bool,
    /// Per-protocol results, in spec order.
    pub runs: Vec<ScenarioRun>,
    /// Human-readable failure descriptions; empty means the scenario passed.
    pub failures: Vec<String>,
}

impl ScenarioReport {
    /// True when no safety violation, fork, fingerprint mismatch or unmet
    /// expectation was recorded.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

// ---- parsing ---------------------------------------------------------------

fn duration_ms(value: f64) -> SimDuration {
    SimDuration::from_nanos((value * 1_000_000.0).round().max(0.0) as u64)
}

fn field_f64(obj: &Json, key: &str, context: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{context}: missing or non-numeric field {key:?}"))
}

fn opt_f64(obj: &Json, key: &str) -> Option<f64> {
    obj.get(key).and_then(Json::as_f64)
}

fn field_str<'j>(obj: &'j Json, key: &str, context: &str) -> Result<&'j str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{context}: missing or non-string field {key:?}"))
}

fn field_node(obj: &Json, key: &str, context: &str) -> Result<NodeId, String> {
    Ok(NodeId(field_f64(obj, key, context)? as u64))
}

/// `[from_ms, until_ms)` window shared by several fault kinds.
fn window(obj: &Json, context: &str) -> Result<(SimDuration, SimDuration), String> {
    let from = duration_ms(field_f64(obj, "from_ms", context)?);
    let until = duration_ms(field_f64(obj, "until_ms", context)?);
    if until <= from {
        return Err(format!("{context}: until_ms must exceed from_ms"));
    }
    Ok((from, until))
}

fn group_mask(obj: &Json, context: &str) -> Result<u64, String> {
    let nodes = obj
        .get("group")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{context}: missing \"group\" array"))?;
    let mut ids = Vec::with_capacity(nodes.len());
    for node in nodes {
        let id = node
            .as_f64()
            .ok_or_else(|| format!("{context}: non-numeric group member"))? as u64;
        if id >= 64 {
            return Err(format!("{context}: group members must have id < 64"));
        }
        ids.push(id);
    }
    Ok(LinkFault::group_mask(ids))
}

fn parse_dist(obj: &Json, context: &str) -> Result<DelayDist, String> {
    let mean = duration_ms(field_f64(obj, "mean_ms", context)?);
    let std = duration_ms(opt_f64(obj, "std_ms").unwrap_or(0.0));
    Ok(DelayDist::new(mean, std))
}

fn parse_topology(spec: &Json, name: &str, cluster: u64) -> Result<Topology, String> {
    let context = format!("{name}/topology");
    let check = |node: u64| -> Result<u64, String> {
        if node >= cluster {
            return Err(format!(
                "{context}: node {node} is outside the {cluster}-node cluster"
            ));
        }
        Ok(node)
    };
    let default = match spec.get("default") {
        Some(obj) => parse_dist(obj, &context)?,
        None => DelayDist::new(
            Config::default().link_latency_mean,
            Config::default().link_latency_std,
        ),
    };
    let mut topology = Topology::new(default);
    if let Some(regions) = spec.get("regions").and_then(Json::as_array) {
        for region in regions {
            let region_name = field_str(region, "name", &context)?;
            // Members come as an explicit id array or, for large clusters,
            // a half-open `{"range": [start, end]}` — n = 1000 specs list
            // four ranges instead of a thousand ids.
            let nodes = region
                .get("nodes")
                .ok_or_else(|| format!("{context}: region {region_name:?} missing nodes"))?;
            let ids: Vec<u64> = if let Some(entries) = nodes.as_array() {
                entries
                    .iter()
                    .map(|n| {
                        n.as_f64()
                            .map(|v| v as u64)
                            .ok_or_else(|| format!("{context}: non-numeric node id"))
                            .and_then(&check)
                    })
                    .collect::<Result<_, _>>()?
            } else if let Some(range) = nodes.get("range").and_then(Json::as_array) {
                let bound = |i: usize| {
                    range
                        .get(i)
                        .and_then(Json::as_f64)
                        .map(|v| v as u64)
                        .ok_or_else(|| format!("{context}: range needs [start, end]"))
                };
                let (start, end) = (bound(0)?, bound(1)?);
                if start >= end {
                    return Err(format!(
                        "{context}: empty node range [{start}, {end}) in region {region_name:?}"
                    ));
                }
                (start..end).map(&check).collect::<Result<_, _>>()?
            } else {
                return Err(format!(
                    "{context}: region {region_name:?} nodes must be an id array or \
                     {{\"range\": [start, end]}}"
                ));
            };
            let intra = parse_dist(region, &context)?;
            topology.add_region(region_name, ids, intra);
        }
    }
    if let Some(inters) = spec.get("inter").and_then(Json::as_array) {
        for inter in inters {
            let from = field_str(inter, "from", &context)?;
            let to = field_str(inter, "to", &context)?;
            let from_id = topology
                .region_id(from)
                .ok_or_else(|| format!("{context}: unknown region {from:?}"))?;
            let to_id = topology
                .region_id(to)
                .ok_or_else(|| format!("{context}: unknown region {to:?}"))?;
            topology.set_inter(from_id, to_id, parse_dist(inter, &context)?);
        }
    }
    // Symmetric by default: one "inter" entry describes both directions
    // unless the reverse direction appears explicitly.
    topology.symmetrize();
    if let Some(links) = spec.get("links").and_then(Json::as_array) {
        for link in links {
            let from = NodeId(check(field_node(link, "from", &context)?.0)?);
            let to = NodeId(check(field_node(link, "to", &context)?.0)?);
            let dist = parse_dist(link, &context)?;
            topology.override_link(from, to, dist);
            // Per-link overrides follow the same symmetric-by-default rule;
            // `"asymmetric": true` keeps the override one-directional.
            let asymmetric = matches!(link.get("asymmetric"), Some(Json::Bool(true)));
            if !asymmetric {
                topology.override_link(to, from, dist);
            }
        }
    }
    Ok(topology)
}

fn parse_trigger(
    obj: &Json,
    at_key: &str,
    view_key: &str,
    context: &str,
) -> Result<Option<TriggerSpec>, String> {
    match (opt_f64(obj, at_key), opt_f64(obj, view_key)) {
        (Some(_), Some(_)) => Err(format!(
            "{context}: {at_key:?} and {view_key:?} are mutually exclusive"
        )),
        (Some(ms), None) => Ok(Some(TriggerSpec::At(duration_ms(ms)))),
        (None, Some(view)) => Ok(Some(TriggerSpec::AtView(View(view as u64)))),
        (None, None) => Ok(None),
    }
}

/// Parses the fields every crash-shaped fault shares: the node, the crash
/// trigger, and the optional recovery trigger with crash-before-recovery
/// ordering enforced.
///
/// A recovery scheduled on the same axis must come after the crash — the
/// reversed pair would fire the (no-op) recovery first and leave the node
/// down forever, silently. Mixing axes is rejected outright: wall-clock time
/// and view numbers advance at unrelated rates, so "crash at view V, recover
/// at T ms" has no well-defined ordering and has historically meant a typo.
fn parse_crash_core(
    obj: &Json,
    context: &str,
) -> Result<(NodeId, TriggerSpec, Option<TriggerSpec>), String> {
    let node = field_node(obj, "node", context)?;
    let at = parse_trigger(obj, "at_ms", "at_view", context)?
        .ok_or_else(|| format!("{context}: crash needs at_ms or at_view"))?;
    let recover = parse_trigger(obj, "recover_at_ms", "recover_at_view", context)?;
    match (at, recover) {
        (TriggerSpec::At(crash), Some(TriggerSpec::At(rec))) if rec <= crash => {
            return Err(format!("{context}: recover_at_ms must exceed at_ms"));
        }
        (TriggerSpec::AtView(crash), Some(TriggerSpec::AtView(rec))) if rec <= crash => {
            return Err(format!("{context}: recover_at_view must exceed at_view"));
        }
        (TriggerSpec::At(_), Some(TriggerSpec::AtView(_))) => {
            return Err(format!(
                "{context}: crash at_ms cannot pair with recover_at_view; \
                 use one trigger axis for both"
            ));
        }
        (TriggerSpec::AtView(_), Some(TriggerSpec::At(_))) => {
            return Err(format!(
                "{context}: crash at_view cannot pair with recover_at_ms; \
                 use one trigger axis for both"
            ));
        }
        _ => {}
    }
    Ok((node, at, recover))
}

/// Parses the `"fault"` label of a durable-restart entry into the crash-point
/// [`StorageFault`] to arm. `"torn_log"` entries default to a torn tail;
/// `"durable_restart"` entries default to a clean shutdown (no fault).
fn parse_storage_fault(
    obj: &Json,
    kind: &str,
    context: &str,
) -> Result<Option<StorageFault>, String> {
    let label = match obj.get("fault") {
        None => return Ok((kind == "torn_log").then_some(StorageFault::TornTail)),
        Some(value) => value
            .as_str()
            .ok_or_else(|| format!("{context}: \"fault\" must be a string label"))?,
    };
    match label {
        "torn_tail" => Ok(Some(StorageFault::TornTail)),
        "truncate_segment" => Ok(Some(StorageFault::TruncateSegment)),
        "corrupt_crc" => Ok(Some(StorageFault::CorruptCrc {
            record: opt_f64(obj, "record").unwrap_or(0.0) as u64,
        })),
        "drop_fsync" => Ok(Some(StorageFault::DropFsync {
            index: opt_f64(obj, "index").unwrap_or(0.0) as u64,
        })),
        other => Err(format!("{context}: unknown storage fault {other:?}")),
    }
}

fn parse_fault(obj: &Json, name: &str) -> Result<FaultSpec, String> {
    let context = format!("{name}/faults");
    let kind = field_str(obj, "kind", &context)?;
    match kind {
        "crash" => {
            let (node, at, recover) = parse_crash_core(obj, &context)?;
            let amnesia = matches!(obj.get("amnesia"), Some(Json::Bool(true)));
            if amnesia && recover.is_none() {
                return Err(format!(
                    "{context}: amnesia without a recovery trigger never restarts the node"
                ));
            }
            Ok(FaultSpec::Crash {
                node,
                at,
                recover,
                amnesia,
                durable: false,
                storage_fault: None,
            })
        }
        "durable_restart" | "torn_log" => {
            let (node, at, recover) = parse_crash_core(obj, &context)?;
            if recover.is_none() {
                return Err(format!(
                    "{context}: {kind} without a recovery trigger never restarts the node"
                ));
            }
            Ok(FaultSpec::Crash {
                node,
                at,
                recover,
                amnesia: false,
                durable: true,
                storage_fault: parse_storage_fault(obj, kind, &context)?,
            })
        }
        "rolling_leader" => {
            let (from, until) = window(obj, &context)?;
            let period = duration_ms(field_f64(obj, "period_ms", &context)?);
            if period.is_zero() {
                return Err(format!("{context}: rolling_leader period must be positive"));
            }
            Ok(FaultSpec::RollingLeader {
                from,
                until,
                period,
            })
        }
        "partition" => {
            let (from, until) = window(obj, &context)?;
            Ok(FaultSpec::Partition {
                members: group_mask(obj, &context)?,
                from,
                until,
            })
        }
        "oscillating_partition" => {
            let (from, until) = window(obj, &context)?;
            let period = duration_ms(field_f64(obj, "period_ms", &context)?);
            if period.is_zero() {
                return Err(format!("{context}: oscillation period must be positive"));
            }
            Ok(FaultSpec::Oscillating {
                members: group_mask(obj, &context)?,
                from,
                until,
                period,
            })
        }
        "fluctuation" => {
            let (from, until) = window(obj, &context)?;
            Ok(FaultSpec::Fluctuation {
                from,
                until,
                min_extra: duration_ms(field_f64(obj, "min_extra_ms", &context)?),
                max_extra: duration_ms(field_f64(obj, "max_extra_ms", &context)?),
            })
        }
        "slow_node" => {
            let (from, until) = window(obj, &context)?;
            Ok(FaultSpec::SlowNode {
                node: field_node(obj, "node", &context)?,
                extra: duration_ms(field_f64(obj, "extra_ms", &context)?),
                from,
                until,
            })
        }
        other => Err(format!("{context}: unknown fault kind {other:?}")),
    }
}

fn parse_expectations(spec: &Json, name: &str) -> Result<Expectations, String> {
    let context = format!("{name}/expect");
    let Some(obj) = spec.get("expect") else {
        return Ok(Expectations::default());
    };
    let mut expect = Expectations {
        min_throughput_tx_per_sec: opt_f64(obj, "min_throughput_tx_per_sec"),
        max_p99_latency_ms: opt_f64(obj, "max_p99_latency_ms"),
        min_chain_growth_rate: opt_f64(obj, "min_chain_growth_rate"),
        min_auth_rejections: opt_f64(obj, "min_auth_rejections").map(|v| v as u64),
        min_admission_rejections: opt_f64(obj, "min_admission_rejections").map(|v| v as u64),
        commit_latency_ordering: Vec::new(),
    };
    if let Some(pairs) = obj.get("commit_latency_ordering").and_then(Json::as_array) {
        for pair in pairs {
            let items = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("{context}: ordering entries are [faster, slower]"))?;
            let parse = |j: &Json| -> Result<ProtocolKind, String> {
                let label = j
                    .as_str()
                    .ok_or_else(|| format!("{context}: non-string protocol label"))?;
                ProtocolKind::from_label(label)
                    .ok_or_else(|| format!("{context}: unknown protocol {label:?}"))
            };
            expect
                .commit_latency_ordering
                .push((parse(&items[0])?, parse(&items[1])?));
        }
    }
    Ok(expect)
}

impl Scenario {
    /// Parses a scenario spec from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax or schema
    /// error.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        Self::from_json(&Json::parse(text)?)
    }

    /// Builds a scenario from a parsed JSON document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first schema violation (missing fields,
    /// unknown labels, invalid windows, inconsistent configuration).
    pub fn from_json(doc: &Json) -> Result<Scenario, String> {
        let name = field_str(doc, "name", "scenario")?.to_string();
        let description = doc
            .get("description")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();

        let protocol_labels = doc
            .get("protocols")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{name}: missing \"protocols\" array"))?;
        let mut protocols = Vec::with_capacity(protocol_labels.len());
        for label in protocol_labels {
            let label = label
                .as_str()
                .ok_or_else(|| format!("{name}: non-string protocol label"))?;
            protocols.push(
                ProtocolKind::from_label(label)
                    .ok_or_else(|| format!("{name}: unknown protocol {label:?}"))?,
            );
        }
        if protocols.is_empty() {
            return Err(format!("{name}: at least one protocol required"));
        }

        let mut base = Config {
            nodes: field_f64(doc, "nodes", &name)? as usize,
            runtime: duration_ms(field_f64(doc, "runtime_ms", &name)?),
            ..Config::default()
        };
        if let Some(v) = opt_f64(doc, "block_size") {
            base.block_size = v as usize;
        }
        if let Some(v) = opt_f64(doc, "payload_size") {
            base.payload_size = v as usize;
        }
        if let Some(v) = opt_f64(doc, "mempool_size") {
            base.mempool_size = v as usize;
        }
        if let Some(v) = opt_f64(doc, "mempool_shards") {
            base.mempool_shards = v as usize;
        }
        if let Some(v) = opt_f64(doc, "client_population") {
            base.client_population = Some(v as u64);
        }
        if matches!(doc.get("signed_requests"), Some(Json::Bool(true))) {
            base.signed_requests = true;
        }
        if let Some(v) = opt_f64(doc, "timeout_ms") {
            base.timeout = duration_ms(v);
        }
        if let Some(v) = opt_f64(doc, "seed") {
            base.seed = v as u64;
        }
        if let Some(v) = opt_f64(doc, "cpu_us") {
            base.cpu_delay = SimDuration::from_nanos((v * 1_000.0) as u64);
        }
        if let Some(v) = opt_f64(doc, "bandwidth_bytes_per_sec") {
            base.bandwidth_bytes_per_sec = v as u64;
        }
        if let Some(v) = opt_f64(doc, "checkpoint_interval_blocks") {
            base.checkpoint_interval = Some(v as u64);
        }
        if matches!(doc.get("durable_log"), Some(Json::Bool(true))) {
            base.durable_log = true;
        }
        if let Some(v) = opt_f64(doc, "fsync_interval") {
            base.fsync_interval = v as usize;
        }
        if let Some(v) = opt_f64(doc, "segment_bytes") {
            base.segment_bytes = v as usize;
        }
        match doc.get("leader") {
            None => {}
            Some(Json::Str(policy)) if policy == "round_robin" => {
                base.leader_policy = LeaderPolicy::RoundRobin;
            }
            Some(Json::Str(policy)) if policy == "hashed" => {
                base.leader_policy = LeaderPolicy::Hashed;
            }
            Some(obj) if obj.get("static").is_some() => {
                base.leader_policy = LeaderPolicy::Static(field_node(obj, "static", &name)?);
            }
            Some(_) => {
                return Err(format!(
                    "{name}: leader must be \"round_robin\", \"hashed\" or {{\"static\": id}}"
                ))
            }
        }

        let workload = doc
            .get("workload")
            .ok_or_else(|| format!("{name}: missing \"workload\""))?;
        if let Some(rate) = opt_f64(workload, "open_loop_tx_per_sec") {
            base.arrival_rate = Some(rate);
        } else if let Some(clients) = opt_f64(workload, "closed_loop_clients") {
            base.arrival_rate = None;
            base.concurrency = clients as usize;
        } else {
            return Err(format!(
                "{name}: workload needs open_loop_tx_per_sec or closed_loop_clients"
            ));
        }

        if let Some(byz) = doc.get("byzantine") {
            let strategy = field_str(byz, "strategy", &name)?;
            base.byzantine_strategy = ByzantineStrategy::from_label(strategy)
                .ok_or_else(|| format!("{name}: unknown byzantine strategy {strategy:?}"))?;
            base.byz_nodes = field_f64(byz, "count", &name)? as usize;
        }

        let cluster = base.nodes as u64;
        let topology = match doc.get("topology") {
            Some(spec) => {
                let topology = parse_topology(spec, &name, cluster)?;
                // Keep the scalar Config fields coherent with the topology's
                // default class so model-parameter derivations stay honest.
                base.link_latency_mean = topology.default_dist().mean;
                base.link_latency_std = topology.default_dist().std;
                Some(topology)
            }
            None => None,
        };

        // Referential integrity of node ids: a typo'd id must fail parsing,
        // not panic the runner (crash faults index per-node state) or
        // silently weaken the configured fault.
        let check_node = |node: NodeId, what: &str| -> Result<(), String> {
            if node.0 >= cluster {
                return Err(format!(
                    "{name}: {what} references node {} but the cluster has {cluster} nodes",
                    node.0
                ));
            }
            Ok(())
        };

        let mut faults = Vec::new();
        if let Some(entries) = doc.get("faults").and_then(Json::as_array) {
            for entry in entries {
                let fault = parse_fault(entry, &name)?;
                match &fault {
                    FaultSpec::Crash { node, .. } => check_node(*node, "a crash fault")?,
                    FaultSpec::SlowNode { node, .. } => check_node(*node, "a slow_node fault")?,
                    FaultSpec::Partition { members, .. }
                    | FaultSpec::Oscillating { members, .. } => {
                        if cluster < 64 && members >> cluster != 0 {
                            return Err(format!(
                                "{name}: a partition group references nodes outside the \
                                 {cluster}-node cluster"
                            ));
                        }
                    }
                    FaultSpec::RollingLeader { .. } | FaultSpec::Fluctuation { .. } => {}
                }
                faults.push(fault);
            }
        }
        // A durable restart without a durable log would silently degrade to
        // an amnesia restart; make the spec say what it means.
        if !base.durable_log
            && faults
                .iter()
                .any(|f| matches!(f, FaultSpec::Crash { durable: true, .. }))
        {
            return Err(format!(
                "{name}: durable_restart/torn_log faults require \"durable_log\": true"
            ));
        }

        let mut cpu_overrides = Vec::new();
        if let Some(entries) = doc.get("cpu_overrides").and_then(Json::as_array) {
            for entry in entries {
                let node = field_node(entry, "node", &name)?;
                check_node(node, "a cpu override")?;
                let cpu_us = field_f64(entry, "cpu_us", &name)?;
                cpu_overrides.push((node, SimDuration::from_nanos((cpu_us * 1_000.0) as u64)));
            }
        }

        let quick_runtime = opt_f64(doc, "quick_runtime_ms")
            .map(duration_ms)
            .unwrap_or_else(|| base.runtime.min(SimDuration::from_millis(500)));

        let threads = match opt_f64(doc, "threads") {
            None => 1,
            Some(v) if v >= 1.0 => v as usize,
            Some(v) => return Err(format!("{name}: threads must be >= 1, got {v}")),
        };

        let transport = match doc.get("transport") {
            None => ScenarioTransport::Sim,
            Some(Json::Str(label)) if label == "sim" => ScenarioTransport::Sim,
            Some(Json::Str(label)) if label == "tcp" => ScenarioTransport::Tcp,
            Some(_) => {
                return Err(format!("{name}: transport must be \"sim\" or \"tcp\""));
            }
        };
        if transport == ScenarioTransport::Tcp {
            // The TCP backend runs on the real network stack: modelled
            // topologies and injected faults have no meaning there, so a spec
            // combining them is a contradiction, not a request.
            if topology.is_some() {
                return Err(format!(
                    "{name}: \"transport\": \"tcp\" cannot carry a modelled topology"
                ));
            }
            if !faults.is_empty() {
                return Err(format!(
                    "{name}: \"transport\": \"tcp\" cannot carry injected faults"
                ));
            }
        }

        base.validate().map_err(|e| format!("{name}: {e}"))?;

        Ok(Scenario {
            expect: parse_expectations(doc, &name)?,
            name,
            description,
            protocols,
            base,
            transport,
            quick_runtime,
            threads,
            topology,
            faults,
            cpu_overrides,
            wait_for_timeout_on_view_change: matches!(
                doc.get("wait_for_timeout_on_view_change"),
                Some(Json::Bool(true))
            ),
            synchronous_epochs: matches!(doc.get("synchronous_epochs"), Some(Json::Bool(true))),
        })
    }

    /// The cluster size of the scenario.
    pub fn nodes(&self) -> usize {
        self.base.nodes
    }

    /// The backend this scenario runs on.
    pub fn transport(&self) -> ScenarioTransport {
        self.transport
    }

    /// The base replica configuration (before tier-specific adjustments by
    /// [`Scenario::build`]). Non-simulator runners use this to construct
    /// their own clusters.
    pub fn base_config(&self) -> &Config {
        &self.base
    }

    /// The measurement window of the given tier.
    pub fn runtime(&self, quick: bool) -> SimDuration {
        if quick {
            self.quick_runtime
        } else {
            self.base.runtime
        }
    }

    /// Compiles the spec into the `(Config, RunOptions)` pair one protocol
    /// run executes. In quick mode, time-based fault windows are scaled by
    /// `quick_runtime / runtime` so the schedule keeps its shape inside the
    /// shorter window.
    pub fn build(&self, quick: bool) -> (Config, RunOptions) {
        let mut config = self.base.clone();
        let scale = if quick {
            config.runtime = self.quick_runtime;
            self.quick_runtime.as_nanos() as f64 / self.base.runtime.as_nanos() as f64
        } else {
            1.0
        };
        let scaled = |d: SimDuration| SimDuration::from_nanos((d.as_nanos() as f64 * scale) as u64);
        let at = |d: SimDuration| SimTime::ZERO + scaled(d);
        let trigger = |t: TriggerSpec| match t {
            TriggerSpec::At(offset) => FaultTrigger::At(at(offset)),
            TriggerSpec::AtView(view) => FaultTrigger::AtView(view),
        };

        let mut options = RunOptions {
            topology: self.topology.clone(),
            cpu_overrides: self.cpu_overrides.clone(),
            threads: self.threads,
            ..RunOptions::default()
        };
        options.replica.wait_for_timeout_on_view_change = self.wait_for_timeout_on_view_change;
        options.replica.synchronous_epochs = self.synchronous_epochs;

        for fault in &self.faults {
            match fault {
                FaultSpec::Crash {
                    node,
                    at: start,
                    recover,
                    amnesia,
                    durable,
                    storage_fault,
                } => {
                    options.node_faults.push(NodeFault {
                        node: *node,
                        crash: trigger(*start),
                        recover: recover.map(trigger),
                        amnesia: *amnesia,
                        durable: *durable,
                        storage_fault: *storage_fault,
                    });
                }
                FaultSpec::RollingLeader {
                    from,
                    until,
                    period,
                } => {
                    let mut index = 0u64;
                    loop {
                        let start = *from + SimDuration::from_nanos(period.as_nanos() * index);
                        if start >= *until {
                            break;
                        }
                        let end = (*until).min(start + *period);
                        options.node_faults.push(NodeFault {
                            node: NodeId(index % config.nodes as u64),
                            crash: FaultTrigger::At(at(start)),
                            recover: Some(FaultTrigger::At(at(end))),
                            amnesia: false,
                            durable: false,
                            storage_fault: None,
                        });
                        index += 1;
                    }
                }
                FaultSpec::Partition {
                    members,
                    from,
                    until,
                } => {
                    options.link_faults.push(LinkFault::GroupPartition {
                        members: *members,
                        start: at(*from),
                        end: at(*until),
                    });
                }
                FaultSpec::Oscillating {
                    members,
                    from,
                    until,
                    period,
                } => {
                    let mut index = 0u64;
                    loop {
                        let start = *from + SimDuration::from_nanos(period.as_nanos() * index);
                        if start >= *until {
                            break;
                        }
                        if index % 2 == 0 {
                            let end = (*until).min(start + *period);
                            options.link_faults.push(LinkFault::GroupPartition {
                                members: *members,
                                start: at(start),
                                end: at(end),
                            });
                        }
                        index += 1;
                    }
                }
                FaultSpec::Fluctuation {
                    from,
                    until,
                    min_extra,
                    max_extra,
                } => {
                    options.fluctuations.push(FluctuationWindow {
                        start: at(*from),
                        end: at(*until),
                        min_extra: *min_extra,
                        max_extra: *max_extra,
                    });
                }
                FaultSpec::SlowNode {
                    node,
                    extra,
                    from,
                    until,
                } => {
                    options.link_faults.push(LinkFault::SlowNode {
                        node: *node,
                        extra: *extra,
                        start: at(*from),
                        end: at(*until),
                    });
                }
            }
        }
        // Metrics are recorded at the observer replica only; crashing it
        // would blind (or badly distort) every number the expectations are
        // evaluated against. Observe from the highest-id honest replica no
        // node fault ever touches; when the schedule covers everyone (e.g.
        // a long rolling-leader sweep), fall back to the default observer.
        options.observer = (0..config.nodes as u64).rev().map(NodeId).find(|id| {
            !config.is_byzantine(*id) && options.node_faults.iter().all(|f| f.node != *id)
        });

        (config, options)
    }

    /// Runs one protocol of the scenario twice (to prove determinism) and
    /// returns the run.
    ///
    /// When the spec asks for more than one engine thread, the audit replay
    /// runs at `threads = 1`: the determinism check then proves the parallel
    /// run is bit-identical to the sequential engine, not merely repeatable.
    pub fn run_protocol(&self, protocol: ProtocolKind, quick: bool) -> ScenarioRun {
        self.run_protocol_with_threads(protocol, quick, None)
    }

    /// [`Scenario::run_protocol`] with the spec's `threads` overridden
    /// (`None` keeps the spec value). The CI quick tier uses this to force a
    /// 2-shard run of a 1-thread spec and assert fingerprint equality.
    pub fn run_protocol_with_threads(
        &self,
        protocol: ProtocolKind,
        quick: bool,
        threads: Option<usize>,
    ) -> ScenarioRun {
        let (config, mut options) = self.build(quick);
        if let Some(threads) = threads {
            options.threads = threads.max(1);
        }
        let report = SimRunner::new(config.clone(), protocol, options.clone()).run();
        if options.threads > 1 {
            options.threads = 1;
        }
        let replay = SimRunner::new(config, protocol, options).run();
        let deterministic = replay.ledger_fingerprint == report.ledger_fingerprint;
        ScenarioRun {
            protocol,
            report,
            deterministic,
        }
    }

    /// Runs every protocol of the scenario sequentially and evaluates the
    /// expectations. The `scenario` binary parallelises over
    /// `(scenario, protocol)` pairs instead; it reassembles reports through
    /// [`Scenario::evaluate`].
    pub fn run(&self, quick: bool) -> ScenarioReport {
        let runs = self
            .protocols
            .iter()
            .map(|&protocol| self.run_protocol(protocol, quick))
            .collect();
        self.evaluate(quick, runs)
    }

    /// Audits completed runs against the scenario's invariants and
    /// expectations, producing the final report.
    pub fn evaluate(&self, quick: bool, runs: Vec<ScenarioRun>) -> ScenarioReport {
        let mut failures = Vec::new();
        for run in &runs {
            let label = run.protocol.label();
            let report = &run.report;
            if report.safety_violations > 0 {
                failures.push(format!(
                    "{}/{label}: {} safety violation(s) — conflicting commits or forked ledgers",
                    self.name, report.safety_violations
                ));
            }
            if !run.deterministic {
                failures.push(format!(
                    "{}/{label}: fingerprint mismatch — the audit replay (single-thread \
                     reference engine) diverged",
                    self.name
                ));
            }
            if let Some(min) = self.expect.min_throughput_tx_per_sec {
                if report.throughput_tx_per_sec < min {
                    failures.push(format!(
                        "{}/{label}: throughput {:.1} tx/s below expected minimum {min:.1}",
                        self.name, report.throughput_tx_per_sec
                    ));
                }
            }
            if let Some(max) = self.expect.max_p99_latency_ms {
                if report.latency.p99_ms > max {
                    failures.push(format!(
                        "{}/{label}: p99 latency {:.1} ms above expected maximum {max:.1}",
                        self.name, report.latency.p99_ms
                    ));
                }
            }
            if let Some(min) = self.expect.min_chain_growth_rate {
                if report.chain_growth_rate < min {
                    failures.push(format!(
                        "{}/{label}: chain growth {:.2} below expected minimum {min:.2}",
                        self.name, report.chain_growth_rate
                    ));
                }
            }
            if let Some(min) = self.expect.min_auth_rejections {
                if report.rejected_messages < min {
                    failures.push(format!(
                        "{}/{label}: {} auth rejections, expected at least {min}",
                        self.name, report.rejected_messages
                    ));
                }
            }
            if let Some(min) = self.expect.min_admission_rejections {
                if report.mempool.rejected < min {
                    failures.push(format!(
                        "{}/{label}: {} admission rejections, expected at least {min}",
                        self.name, report.mempool.rejected
                    ));
                }
            }
            // Recovery audit: every amnesia-recovered replica must end the
            // run back on the honest chain (vacuously true when the scenario
            // schedules no amnesia recoveries).
            if !report.recovery.recovered_caught_up {
                failures.push(format!(
                    "{}/{label}: {} amnesia recovery(ies) but a recovered replica never \
                     caught up to the honest chain",
                    self.name, report.recovery.amnesia_recoveries
                ));
            }
        }
        for &(faster, slower) in &self.expect.commit_latency_ordering {
            let find = |kind: ProtocolKind| runs.iter().find(|r| r.protocol == kind);
            match (find(faster), find(slower)) {
                (Some(a), Some(b)) => {
                    if a.report.latency.mean_ms >= b.report.latency.mean_ms {
                        failures.push(format!(
                            "{}: expected {} mean latency ({:.2} ms) below {} ({:.2} ms)",
                            self.name,
                            faster.label(),
                            a.report.latency.mean_ms,
                            slower.label(),
                            b.report.latency.mean_ms
                        ));
                    }
                }
                _ => failures.push(format!(
                    "{}: latency ordering references protocols the scenario does not run",
                    self.name
                )),
            }
        }
        ScenarioReport {
            name: self.name.clone(),
            description: self.description.clone(),
            quick,
            runs,
            failures,
        }
    }
}

impl ToJson for ScenarioRun {
    fn to_json(&self) -> Json {
        Json::obj([
            ("protocol", Json::from(self.protocol.label())),
            ("deterministic", Json::from(self.deterministic)),
            ("report", self.report.to_json()),
        ])
    }
}

impl ToJson for ScenarioReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("description", Json::from(self.description.as_str())),
            ("quick", Json::from(self.quick)),
            ("passed", Json::from(self.passed())),
            (
                "failures",
                Json::arr(self.failures.iter().map(|f| Json::from(f.as_str()))),
            ),
            ("runs", self.runs.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_spec() -> String {
        r#"{
            "name": "mini",
            "protocols": ["HS", "2CHS"],
            "nodes": 4,
            "block_size": 100,
            "runtime_ms": 400,
            "quick_runtime_ms": 200,
            "seed": 7,
            "workload": {"open_loop_tx_per_sec": 3000},
            "expect": {"min_chain_growth_rate": 0.3,
                       "commit_latency_ordering": [["2CHS", "HS"]]}
        }"#
        .to_string()
    }

    #[test]
    fn parses_a_minimal_spec() {
        let scenario = Scenario::parse(&minimal_spec()).unwrap();
        assert_eq!(scenario.name, "mini");
        assert_eq!(
            scenario.protocols,
            vec![ProtocolKind::HotStuff, ProtocolKind::TwoChainHotStuff]
        );
        assert_eq!(scenario.nodes(), 4);
        assert_eq!(scenario.runtime(false), SimDuration::from_millis(400));
        assert_eq!(scenario.runtime(true), SimDuration::from_millis(200));
        assert_eq!(
            scenario.expect.commit_latency_ordering,
            vec![(ProtocolKind::TwoChainHotStuff, ProtocolKind::HotStuff)]
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(Scenario::parse("{").is_err());
        assert!(Scenario::parse(r#"{"name": "x"}"#).is_err(), "no protocols");
        let unknown = r#"{"name":"x","protocols":["XX"],"nodes":4,"runtime_ms":100,
                          "workload":{"open_loop_tx_per_sec":1}}"#;
        assert!(Scenario::parse(unknown).is_err(), "unknown protocol label");
        let bad_fault = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                            "workload":{"open_loop_tx_per_sec":1},
                            "faults":[{"kind":"warp","node":0}]}"#;
        assert!(Scenario::parse(bad_fault).is_err(), "unknown fault kind");
        let bad_byz = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                          "workload":{"open_loop_tx_per_sec":1},
                          "byzantine":{"strategy":"silence","count":2}}"#;
        assert!(Scenario::parse(bad_byz).is_err(), "f bound enforced");
    }

    #[test]
    fn rejects_out_of_cluster_node_references() {
        let base = |extra: &str| {
            format!(
                r#"{{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                    "workload":{{"open_loop_tx_per_sec":1}},{extra}}}"#
            )
        };
        let crash = base(r#""faults":[{"kind":"crash","node":9,"at_ms":50}]"#);
        assert!(Scenario::parse(&crash).is_err(), "crash node bound");
        let slow = base(
            r#""faults":[{"kind":"slow_node","node":4,"extra_ms":1,"from_ms":0,"until_ms":10}]"#,
        );
        assert!(Scenario::parse(&slow).is_err(), "slow node bound");
        let group =
            base(r#""faults":[{"kind":"partition","group":[0,5],"from_ms":0,"until_ms":10}]"#);
        assert!(Scenario::parse(&group).is_err(), "partition group bound");
        let cpu = base(r#""cpu_overrides":[{"node":7,"cpu_us":100}]"#);
        assert!(Scenario::parse(&cpu).is_err(), "cpu override bound");
        let region =
            base(r#""topology":{"regions":[{"name":"a","nodes":[0,9],"mean_ms":1,"std_ms":0}]}"#);
        assert!(Scenario::parse(&region).is_err(), "region node bound");
        let link = base(r#""topology":{"links":[{"from":0,"to":6,"mean_ms":1,"std_ms":0}]}"#);
        assert!(Scenario::parse(&link).is_err(), "link override bound");
    }

    #[test]
    fn rejects_recovery_scheduled_before_the_crash() {
        let spec = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                       "workload":{"open_loop_tx_per_sec":1},
                       "faults":[{"kind":"crash","node":0,"at_ms":800,"recover_at_ms":500}]}"#;
        assert!(Scenario::parse(spec).is_err());
        let views = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                        "workload":{"open_loop_tx_per_sec":1},
                        "faults":[{"kind":"crash","node":0,"at_view":10,"recover_at_view":5}]}"#;
        assert!(Scenario::parse(views).is_err());
    }

    #[test]
    fn rejects_crash_and_recovery_triggers_on_different_axes() {
        // Wall-clock and view triggers advance at unrelated rates, so a
        // mixed pair has no defined ordering — both directions must fail.
        let time_then_view = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                                 "workload":{"open_loop_tx_per_sec":1},
                                 "faults":[{"kind":"crash","node":0,"at_ms":50,
                                            "recover_at_view":20}]}"#;
        assert!(Scenario::parse(time_then_view).is_err());
        let view_then_time = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                                 "workload":{"open_loop_tx_per_sec":1},
                                 "faults":[{"kind":"crash","node":0,"at_view":10,
                                            "recover_at_ms":80}]}"#;
        assert!(Scenario::parse(view_then_time).is_err());
    }

    #[test]
    fn parses_amnesia_crashes_and_the_checkpoint_knob() {
        let spec = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                       "checkpoint_interval_blocks": 16,
                       "workload":{"open_loop_tx_per_sec":1},
                       "faults":[{"kind":"crash","node":0,"at_ms":20,
                                  "recover_at_ms":60,"amnesia":true}]}"#;
        let scenario = Scenario::parse(spec).unwrap();
        let (config, options) = scenario.build(false);
        assert_eq!(config.checkpoint_interval, Some(16));
        assert_eq!(options.node_faults.len(), 1);
        assert!(options.node_faults[0].amnesia);

        // Amnesia without a recovery trigger can never restart the node —
        // the spec is a contradiction and must not parse.
        let never_back = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                             "workload":{"open_loop_tx_per_sec":1},
                             "faults":[{"kind":"crash","node":0,"at_ms":20,
                                        "amnesia":true}]}"#;
        assert!(Scenario::parse(never_back).is_err());
    }

    #[test]
    fn parses_durable_restart_faults_and_storage_knobs() {
        let spec = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                       "durable_log": true,
                       "fsync_interval": 4,
                       "segment_bytes": 8192,
                       "workload":{"open_loop_tx_per_sec":1},
                       "faults":[
                           {"kind":"durable_restart","node":0,"at_ms":20,"recover_at_ms":60},
                           {"kind":"torn_log","node":1,"at_ms":30,"recover_at_ms":70},
                           {"kind":"torn_log","node":2,"at_ms":30,"recover_at_ms":70,
                            "fault":"corrupt_crc","record":3},
                           {"kind":"torn_log","node":3,"at_ms":30,"recover_at_ms":70,
                            "fault":"drop_fsync","index":5}]}"#;
        let scenario = Scenario::parse(spec).unwrap();
        assert!(scenario.base.durable_log);
        assert_eq!(scenario.base.fsync_interval, 4);
        assert_eq!(scenario.base.segment_bytes, 8192);
        let (_, options) = scenario.build(false);
        assert_eq!(options.node_faults.len(), 4);
        assert!(options.node_faults.iter().all(|f| f.durable && !f.amnesia));
        // A clean durable restart arms no fault; torn_log defaults to a torn
        // tail; explicit labels carry their parameters.
        assert_eq!(options.node_faults[0].storage_fault, None);
        assert_eq!(
            options.node_faults[1].storage_fault,
            Some(StorageFault::TornTail)
        );
        assert_eq!(
            options.node_faults[2].storage_fault,
            Some(StorageFault::CorruptCrc { record: 3 })
        );
        assert_eq!(
            options.node_faults[3].storage_fault,
            Some(StorageFault::DropFsync { index: 5 })
        );
    }

    #[test]
    fn rejects_contradictory_durable_restart_specs() {
        // A durable restart with no recovery trigger never restarts.
        let never_back = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                             "durable_log": true,
                             "workload":{"open_loop_tx_per_sec":1},
                             "faults":[{"kind":"durable_restart","node":0,"at_ms":20}]}"#;
        assert!(Scenario::parse(never_back).is_err());
        // Without the durable log there is nothing to replay — the restart
        // would silently degrade to amnesia, so the spec must not parse.
        let no_log = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                         "workload":{"open_loop_tx_per_sec":1},
                         "faults":[{"kind":"durable_restart","node":0,"at_ms":20,
                                    "recover_at_ms":60}]}"#;
        assert!(Scenario::parse(no_log).is_err());
        // Unknown storage-fault labels are typos, not defaults.
        let bad_fault = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                            "durable_log": true,
                            "workload":{"open_loop_tx_per_sec":1},
                            "faults":[{"kind":"torn_log","node":0,"at_ms":20,
                                       "recover_at_ms":60,"fault":"shredded"}]}"#;
        assert!(Scenario::parse(bad_fault).is_err());
    }

    #[test]
    fn parses_the_client_pipeline_knobs() {
        let spec = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                       "mempool_shards": 8,
                       "client_population": 1000000,
                       "signed_requests": true,
                       "workload":{"open_loop_tx_per_sec":1}}"#;
        let scenario = Scenario::parse(spec).unwrap();
        assert_eq!(scenario.base.mempool_shards, 8);
        assert_eq!(scenario.base.client_population, Some(1_000_000));
        assert!(scenario.base.signed_requests);

        // Defaults stay on the legacy path so existing specs keep their
        // recorded fingerprints.
        let plain = Scenario::parse(&minimal_spec()).unwrap();
        assert_eq!(plain.base.mempool_shards, 1);
        assert_eq!(plain.base.client_population, None);
        assert!(!plain.base.signed_requests);

        let zero_shards = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                              "mempool_shards": 0,
                              "workload":{"open_loop_tx_per_sec":1}}"#;
        assert!(Scenario::parse(zero_shards).is_err(), "validate() gates");
    }

    #[test]
    fn observer_avoids_faulted_and_byzantine_nodes() {
        let spec = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                       "workload":{"open_loop_tx_per_sec":1},
                       "faults":[{"kind":"crash","node":3,"at_ms":50}]}"#;
        let (_, options) = Scenario::parse(spec).unwrap().build(false);
        assert_eq!(
            options.observer,
            Some(NodeId(2)),
            "default observer (3) is crashed; next-highest untouched node observes"
        );
        let clean = r#"{"name":"x","protocols":["HS"],"nodes":4,"runtime_ms":100,
                        "workload":{"open_loop_tx_per_sec":1}}"#;
        let (_, options) = Scenario::parse(clean).unwrap().build(false);
        assert_eq!(options.observer, Some(NodeId(3)));
    }

    #[test]
    fn quick_mode_scales_time_windows_but_not_views() {
        let spec = r#"{
            "name": "scaled",
            "protocols": ["HS"],
            "nodes": 4,
            "runtime_ms": 1000,
            "quick_runtime_ms": 100,
            "workload": {"open_loop_tx_per_sec": 1000},
            "faults": [
                {"kind": "crash", "node": 0, "at_ms": 500, "recover_at_ms": 800},
                {"kind": "crash", "node": 1, "at_view": 20}
            ]
        }"#;
        let scenario = Scenario::parse(spec).unwrap();
        let (config, options) = scenario.build(true);
        assert_eq!(config.runtime, SimDuration::from_millis(100));
        assert_eq!(options.node_faults.len(), 2);
        assert_eq!(
            options.node_faults[0].crash,
            FaultTrigger::At(SimTime(50_000_000)),
            "500 ms scaled by 1/10"
        );
        assert_eq!(
            options.node_faults[0].recover,
            Some(FaultTrigger::At(SimTime(80_000_000)))
        );
        assert_eq!(
            options.node_faults[1].crash,
            FaultTrigger::AtView(View(20)),
            "view triggers are not scaled"
        );
        let (config, options) = scenario.build(false);
        assert_eq!(config.runtime, SimDuration::from_millis(1000));
        assert_eq!(
            options.node_faults[0].crash,
            FaultTrigger::At(SimTime(500_000_000))
        );
    }

    #[test]
    fn oscillating_partition_compiles_to_alternating_windows() {
        let spec = r#"{
            "name": "osc",
            "protocols": ["HS"],
            "nodes": 4,
            "runtime_ms": 1000,
            "workload": {"open_loop_tx_per_sec": 1000},
            "faults": [{"kind": "oscillating_partition", "group": [0, 1],
                        "from_ms": 100, "until_ms": 500, "period_ms": 100}]
        }"#;
        let scenario = Scenario::parse(spec).unwrap();
        let (_, options) = scenario.build(false);
        // Windows at [100,200) and [300,400): every other period.
        assert_eq!(options.link_faults.len(), 2);
        let expected = [(100u64, 200u64), (300, 400)];
        for (fault, (from, until)) in options.link_faults.iter().zip(expected) {
            match fault {
                LinkFault::GroupPartition {
                    members,
                    start,
                    end,
                } => {
                    assert_eq!(*members, 0b11);
                    assert_eq!(*start, SimTime(from * 1_000_000));
                    assert_eq!(*end, SimTime(until * 1_000_000));
                }
                other => panic!("expected group partition, got {other:?}"),
            }
        }
    }

    #[test]
    fn rolling_leader_rotates_the_crashed_node() {
        let spec = r#"{
            "name": "roll",
            "protocols": ["HS"],
            "nodes": 4,
            "runtime_ms": 1000,
            "workload": {"open_loop_tx_per_sec": 1000},
            "faults": [{"kind": "rolling_leader",
                        "from_ms": 0, "until_ms": 600, "period_ms": 100}]
        }"#;
        let scenario = Scenario::parse(spec).unwrap();
        let (_, options) = scenario.build(false);
        assert_eq!(options.node_faults.len(), 6);
        let nodes: Vec<u64> = options.node_faults.iter().map(|f| f.node.0).collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 0, 1], "round-robin rotation");
    }

    #[test]
    fn running_a_scenario_produces_a_passing_deterministic_report() {
        let scenario = Scenario::parse(&minimal_spec()).unwrap();
        let report = scenario.run(true);
        assert_eq!(report.runs.len(), 2);
        assert!(
            report.passed(),
            "unexpected failures: {:?}",
            report.failures
        );
        for run in &report.runs {
            assert!(run.deterministic);
            assert!(run.report.committed_txs > 0);
        }
        let rendered = report.to_json().render_pretty();
        assert!(rendered.contains("\"name\": \"mini\""));
        assert!(rendered.contains("\"passed\": true"));
    }

    #[test]
    fn evaluate_flags_unmet_expectations() {
        let mut scenario = Scenario::parse(&minimal_spec()).unwrap();
        scenario.expect.min_throughput_tx_per_sec = Some(f64::MAX);
        let report = scenario.run(true);
        assert!(!report.passed());
        assert!(report.failures.iter().any(|f| f.contains("throughput")));
    }

    #[test]
    fn topology_spec_builds_heterogeneous_links() {
        let spec = r#"{
            "name": "topo",
            "protocols": ["HS"],
            "nodes": 4,
            "runtime_ms": 300,
            "workload": {"open_loop_tx_per_sec": 1000},
            "topology": {
                "default": {"mean_ms": 0.25, "std_ms": 0.05},
                "regions": [
                    {"name": "east", "nodes": [0, 1], "mean_ms": 0.3, "std_ms": 0.05},
                    {"name": "west", "nodes": [2, 3], "mean_ms": 0.3, "std_ms": 0.05}
                ],
                "inter": [{"from": "east", "to": "west", "mean_ms": 40, "std_ms": 2}],
                "links": [{"from": 0, "to": 3, "mean_ms": 80, "std_ms": 2, "asymmetric": true}]
            }
        }"#;
        let scenario = Scenario::parse(spec).unwrap();
        let (config, options) = scenario.build(false);
        let topology = options.topology.expect("topology compiled");
        assert_eq!(
            topology.dist(NodeId(0), NodeId(2)).mean,
            SimDuration::from_millis(40)
        );
        assert_eq!(
            topology.dist(NodeId(2), NodeId(0)).mean,
            SimDuration::from_millis(40),
            "inter entries are symmetric by default"
        );
        assert_eq!(
            topology.dist(NodeId(0), NodeId(3)).mean,
            SimDuration::from_millis(80)
        );
        assert_eq!(
            topology.dist(NodeId(3), NodeId(0)).mean,
            SimDuration::from_millis(40),
            "asymmetric link override stays one-way"
        );
        assert_eq!(config.link_latency_mean, SimDuration::from_micros(250));
    }
}

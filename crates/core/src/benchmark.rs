//! The Benchmarker: saturation sweeps producing latency/throughput curves.
//!
//! The paper's throughput-versus-latency figures are produced by increasing
//! the offered load "until the system is saturated" (§VI). The
//! [`Benchmarker`] automates that: it runs the simulator at a ladder of
//! arrival rates and records one [`CurvePoint`] per rate, stopping when
//! additional load no longer increases committed throughput (or latency
//! explodes).
//!
//! Sweep points are independent, deterministic simulations, so the batch
//! entry points ([`Benchmarker::run_at_many`], [`Benchmarker::run_all`])
//! execute them on a bounded std-thread pool ([`crate::parallel`]) and
//! collect results in input order — a figure's JSON artifact is byte-stable
//! regardless of how many workers ran it.

use bamboo_types::{Config, Json, ProtocolKind, ToJson};

use crate::metrics::RunReport;
use crate::parallel::{default_workers, run_ordered};
use crate::runner::{RunOptions, SimRunner};

/// One point of a latency/throughput curve.
#[derive(Clone, Debug)]
pub struct CurvePoint {
    /// Offered load (transaction arrival rate, tx/s).
    pub offered_tx_per_sec: f64,
    /// Committed throughput (tx/s).
    pub throughput_tx_per_sec: f64,
    /// Mean end-to-end latency (ms).
    pub latency_ms: f64,
    /// 99th percentile latency (ms).
    pub p99_latency_ms: f64,
    /// The full report for this point.
    pub report: RunReport,
}

impl ToJson for CurvePoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("offered_tx_per_sec", Json::from(self.offered_tx_per_sec)),
            (
                "throughput_tx_per_sec",
                Json::from(self.throughput_tx_per_sec),
            ),
            ("latency_ms", Json::from(self.latency_ms)),
            ("p99_latency_ms", Json::from(self.p99_latency_ms)),
            ("report", self.report.to_json()),
        ])
    }
}

/// Options controlling a saturation sweep.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// First offered load (tx/s).
    pub start_rate: f64,
    /// Multiplicative step between successive loads.
    pub growth: f64,
    /// Maximum number of points.
    pub max_points: usize,
    /// Stop when committed throughput improves by less than this fraction.
    pub saturation_gain: f64,
    /// Stop when mean latency exceeds this many milliseconds.
    pub latency_ceiling_ms: f64,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            start_rate: 2_000.0,
            growth: 1.6,
            max_points: 12,
            saturation_gain: 0.03,
            latency_ceiling_ms: 400.0,
        }
    }
}

/// Runs saturation sweeps for one protocol and configuration template.
#[derive(Clone, Debug)]
pub struct Benchmarker {
    config: Config,
    protocol: ProtocolKind,
    options: RunOptions,
    sweep: SweepOptions,
}

impl Benchmarker {
    /// Creates a benchmarker. The `config.arrival_rate` field is overwritten
    /// by the sweep; every other field is used as-is.
    pub fn new(config: Config, protocol: ProtocolKind, options: RunOptions) -> Self {
        Self {
            config,
            protocol,
            options,
            sweep: SweepOptions::default(),
        }
    }

    /// Overrides the sweep options.
    pub fn with_sweep(mut self, sweep: SweepOptions) -> Self {
        self.sweep = sweep;
        self
    }

    /// Runs the simulator once at a single offered load.
    pub fn run_at(&self, rate: f64) -> RunReport {
        let mut config = self.config.clone();
        config.arrival_rate = Some(rate);
        SimRunner::new(config, self.protocol, self.options.clone()).run()
    }

    /// Runs one independent simulation per offered load on a bounded thread
    /// pool and returns the reports in `rates` order. Each point is exactly
    /// the run [`Benchmarker::run_at`] would produce — runners are
    /// self-contained and deterministic, so parallelism changes nothing but
    /// wall-clock time.
    pub fn run_at_many(&self, rates: &[f64]) -> Vec<RunReport> {
        let jobs: Vec<_> = rates
            .iter()
            .map(|&rate| {
                let mut config = self.config.clone();
                config.arrival_rate = Some(rate);
                let protocol = self.protocol;
                let options = self.options.clone();
                move || SimRunner::new(config, protocol, options).run()
            })
            .collect();
        run_ordered(jobs, default_workers())
    }

    /// Runs a heterogeneous batch of sweep points — arbitrary
    /// `(config, protocol, options)` triples, e.g. a scalability grid of
    /// protocols × cluster sizes — on a bounded thread pool, returning the
    /// reports in input order.
    pub fn run_all(points: Vec<(Config, ProtocolKind, RunOptions)>) -> Vec<RunReport> {
        let jobs: Vec<_> = points
            .into_iter()
            .map(|(config, protocol, options)| {
                move || SimRunner::new(config, protocol, options).run()
            })
            .collect();
        run_ordered(jobs, default_workers())
    }

    /// Runs the full saturation sweep.
    pub fn sweep(&self) -> Vec<CurvePoint> {
        let mut points: Vec<CurvePoint> = Vec::new();
        let mut rate = self.sweep.start_rate;
        let mut best_throughput = 0.0_f64;
        for _ in 0..self.sweep.max_points {
            let report = self.run_at(rate);
            let point = CurvePoint {
                offered_tx_per_sec: rate,
                throughput_tx_per_sec: report.throughput_tx_per_sec,
                latency_ms: report.latency.mean_ms,
                p99_latency_ms: report.latency.p99_ms,
                report,
            };
            let throughput = point.throughput_tx_per_sec;
            let latency = point.latency_ms;
            points.push(point);
            let saturated = throughput < best_throughput * (1.0 + self.sweep.saturation_gain)
                && best_throughput > 0.0;
            best_throughput = best_throughput.max(throughput);
            if saturated || latency > self.sweep.latency_ceiling_ms {
                break;
            }
            rate *= self.sweep.growth;
        }
        points
    }

    /// Peak committed throughput over a sweep.
    pub fn peak_throughput(points: &[CurvePoint]) -> f64 {
        points
            .iter()
            .map(|p| p.throughput_tx_per_sec)
            .fold(0.0, f64::max)
    }

    /// Latency at the lowest offered load of a sweep (the "unloaded" latency).
    pub fn base_latency(points: &[CurvePoint]) -> f64 {
        points.first().map(|p| p.latency_ms).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_types::SimDuration;

    fn quick_config() -> Config {
        Config::builder()
            .nodes(4)
            .block_size(50)
            .runtime(SimDuration::from_millis(300))
            .seed(5)
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_produces_monotone_offered_load_and_stops() {
        let bench = Benchmarker::new(
            quick_config(),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .with_sweep(SweepOptions {
            start_rate: 500.0,
            growth: 2.0,
            max_points: 4,
            ..Default::default()
        });
        let points = bench.sweep();
        assert!(!points.is_empty());
        assert!(points.len() <= 4);
        for pair in points.windows(2) {
            assert!(pair[1].offered_tx_per_sec > pair[0].offered_tx_per_sec);
        }
        assert!(Benchmarker::peak_throughput(&points) > 0.0);
        assert!(Benchmarker::base_latency(&points) > 0.0);
    }

    #[test]
    fn run_at_overrides_arrival_rate() {
        let bench = Benchmarker::new(
            quick_config(),
            ProtocolKind::TwoChainHotStuff,
            RunOptions::default(),
        );
        let report = bench.run_at(1_000.0);
        assert!(report.committed_txs > 0);
        assert_eq!(report.protocol, ProtocolKind::TwoChainHotStuff);
    }

    #[test]
    fn parallel_points_match_sequential_runs_in_order() {
        let bench = Benchmarker::new(
            quick_config(),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        );
        let rates = [800.0, 1_600.0, 3_200.0];
        let parallel = bench.run_at_many(&rates);
        assert_eq!(parallel.len(), rates.len());
        for (&rate, report) in rates.iter().zip(&parallel) {
            let sequential = bench.run_at(rate);
            assert_eq!(report.committed_txs, sequential.committed_txs, "{rate}");
            assert_eq!(report.ledger_fingerprint, sequential.ledger_fingerprint);
            assert_eq!(report.events_processed, sequential.events_processed);
        }
    }

    #[test]
    fn run_all_executes_heterogeneous_points_in_input_order() {
        let points: Vec<(Config, ProtocolKind, RunOptions)> = [
            ProtocolKind::HotStuff,
            ProtocolKind::TwoChainHotStuff,
            ProtocolKind::Streamlet,
        ]
        .into_iter()
        .map(|protocol| {
            let mut config = quick_config();
            config.arrival_rate = Some(1_500.0);
            (config, protocol, RunOptions::default())
        })
        .collect();
        let reports = Benchmarker::run_all(points);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].protocol, ProtocolKind::HotStuff);
        assert_eq!(reports[1].protocol, ProtocolKind::TwoChainHotStuff);
        assert_eq!(reports[2].protocol, ProtocolKind::Streamlet);
        for report in &reports {
            assert_eq!(report.safety_violations, 0);
            assert!(report.committed_blocks > 0);
        }
    }
}

//! bamboo-core — the Bamboo framework assembled.
//!
//! This crate wires the shared modules (block forest, mempool, pacemaker,
//! quorum, safety/protocols, network simulation) into runnable replicas and
//! provides the benchmark facilities of the paper:
//!
//! * [`Replica`] — the event-driven replica node: a pure state machine that
//!   consumes [`ReplicaEvent`]s and emits [`Outbound`] messages plus CPU-cost
//!   accounting, so the same code runs on the deterministic simulator and on
//!   the threaded runtime.
//! * [`QuorumTracker`] — the Quorum component (`voted()` / `certified()`).
//! * [`SimRunner`] — the discrete-event simulation runner: network latency,
//!   NIC and CPU models, workload generation, fault injection, metric
//!   collection.
//! * [`Benchmarker`] — saturation sweeps producing the latency/throughput
//!   curves of the paper's figures; independent sweep points execute on a
//!   bounded std-thread pool ([`parallel`]) with input-order results.
//! * [`Metrics`] / [`RunReport`] — throughput, latency, chain growth rate and
//!   block interval (§IV-B).
//! * [`Scenario`] — the scenario engine: declarative experiment specs (JSON)
//!   describing topology, workload, Byzantine strategy and a fault schedule,
//!   compiled into simulator runs and audited into [`ScenarioReport`]s.
//! * [`runtime`] — the shared runtime spine: the [`Transport`] trait and the
//!   [`NodeHost`] driver both deployment backends are built on. The host is
//!   also the authenticated ingress stage: every inbound message is verified
//!   against the validator set before the replica sees it.
//! * [`verify::VerifyPool`] — the threaded runtime's verification worker
//!   pool: signature checking runs on dedicated threads and pipelines with
//!   consensus instead of serialising onto it.
//! * [`threaded::ThreadedCluster`] — a live, multi-threaded in-process cluster
//!   used by the examples and the cross-runtime agreement tests.
//!
//! # Quickstart
//!
//! ```
//! use bamboo_core::{RunOptions, SimRunner};
//! use bamboo_types::{Config, ProtocolKind, SimDuration};
//!
//! let config = Config::builder()
//!     .nodes(4)
//!     .block_size(100)
//!     .runtime(SimDuration::from_millis(200))
//!     .arrival_rate(5_000.0)
//!     .build()
//!     .expect("valid config");
//! let report = SimRunner::new(config, ProtocolKind::HotStuff, RunOptions::default()).run();
//! assert!(report.committed_blocks > 0);
//! assert_eq!(report.safety_violations, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmark;
pub mod metrics;
pub mod parallel;
pub mod quorum;
pub mod replica;
pub mod runner;
pub mod runtime;
pub mod scenario;
pub mod storage;
pub mod threaded;
pub mod verify;
pub mod workload;

pub use bamboo_sim::{DelayDist, FluctuationWindow, LinkFault, Topology};
pub use benchmark::{Benchmarker, CurvePoint, SweepOptions};
pub use metrics::{
    LatencyStats, MempoolTotals, Metrics, RecoveryReport, RunReport, ThroughputSample,
};
pub use parallel::run_ordered;
pub use quorum::QuorumTracker;
pub use replica::{
    Destination, HandleResult, Outbound, RecoveryStats, Replica, ReplicaEvent, ReplicaOptions,
};
pub use runner::{FaultTrigger, NodeFault, RunOptions, SimRunner};
pub use runtime::{BufferedTransport, NodeHost, StepReport, Transport};
pub use scenario::{Expectations, Scenario, ScenarioReport, ScenarioRun, ScenarioTransport};
pub use storage::{
    DecodedStream, FileBackend, MemoryBackend, RecordKind, ReplayResult, SegmentBackend,
    SegmentLog, StorageFault,
};
pub use threaded::{ClusterReport, ThreadedCluster, DEFAULT_VERIFY_WORKERS};
pub use verify::{VerifyHandle, VerifyPool};
pub use workload::{Arrival, ClosedLoopWorkload, OpenLoopWorkload, Workload, CLIENT_ID_BASE};

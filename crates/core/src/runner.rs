//! The discrete-event simulation runner: a deterministic window-barrier
//! engine that shards replicas across worker threads.
//!
//! [`SimRunner`] wires `N` replicas (each behind a [`NodeHost`]), a workload
//! generator, and the network / NIC / CPU models of `bamboo-sim` into one
//! deterministic simulation. One run corresponds to one benchmark
//! configuration in the paper (one point of a figure); the sweep logic lives
//! in [`crate::Benchmarker`].
//!
//! # Conservative-lookahead sharding
//!
//! The engine partitions replicas round-robin across `threads` shards
//! (`shard = node % threads`) and advances all shards in lock-step time
//! windows of width `W = LatencyModel::lookahead()` — the minimum possible
//! replica-to-replica delivery delay over every link class of the topology.
//! Because a message absorbed at time `t` inside window `k` is delivered no
//! earlier than `t + W ≥ (k + 1)·W`, **every** replica-to-replica delivery
//! crosses a window barrier: shards execute a window's events entirely
//! independently, stage outbound deliveries in an outbox, and the coordinator
//! exchanges the outboxes at the barrier. Only self-events (view timers,
//! delayed proposals) are inserted into a shard's own queue mid-window, which
//! is safe because they never leave the shard.
//!
//! Determinism across thread counts falls out of three invariants:
//!
//! * **per-replica RNG streams** — replica `r` draws all of its latency
//!   samples (including the observer's client-response delays) from
//!   `SimRng::new(seed).derive(r)`, and the workload generator owns its own
//!   stream, so randomness consumption never depends on which shard a
//!   replica landed on;
//! * **canonical barrier order** — the coordinator merges all shard outboxes
//!   plus freshly generated client batches and sorts them by
//!   `(deliver_at, origin, per-origin sequence)` before injecting, so every
//!   shard queue receives its events in a layout-invariant order (same-time
//!   ties in a queue pop in insertion order);
//! * **phase-aligned global state** — view-triggered faults resolve at
//!   barriers from the maximum view across all shards, and workload ticks
//!   are generated at the barrier that opens their window.
//!
//! Events at different replicas within one window carry no cross-replica
//! data dependency (each touches only its own host, RNG and busy-server
//! state; outputs are canonicalised as above), so pop-order ties between
//! replicas sharing a queue are semantically neutral and every thread count
//! — including the inline `threads = 1` path, which runs the identical
//! windowed code — produces the same ledgers, event counts and metrics.
//!
//! The runner is a *backend* of the shared runtime layer
//! ([`crate::runtime`]): replica effects are collected through a
//! [`BufferedTransport`] and mapped onto the event queue with the paper's
//! delay composition (§V) — normally distributed propagation delay, `2·m/b`
//! NIC serialisation, and a constant CPU cost per crypto operation (modelled
//! as a per-replica busy server, which is what produces the M/D/1-style
//! queueing behaviour the analytical model assumes).
//!
//! The engine keeps allocation and crypto off its hot path: outbound
//! envelopes are `Arc`-backed ([`bamboo_types::SharedMessage`]), so a
//! broadcast *stages* n − 1 pointer bumps, and each unique envelope is
//! cryptographically verified **at most once** — lazily, on the first
//! recipient whose link delivers, in the sender's shard — with the
//! [`VerifiedMessage`] token fanned out (forged envelopes are delivered as
//! rejections so every recipient still books the modeled cost). Each shard
//! reuses one [`BufferedTransport`], its slab-backed
//! [`EventQueue`] and its workload buckets across windows, so steady-state
//! execution is allocation-light.

use std::sync::mpsc;

use bamboo_sim::{
    EventQueue, FluctuationWindow, LatencyModel, LinkFault, NicModel, SimRng, Topology,
};
use bamboo_types::{
    Authenticator, ClientRequest, Config, NodeId, ProtocolKind, SharedMessage, SimDuration,
    SimTime, TxId, VerifiedMessage, View,
};

use crate::metrics::{Metrics, RecoveryReport, RunReport};
use crate::replica::{Replica, ReplicaEvent, ReplicaOptions};
use crate::runtime::{BufferedTransport, NodeHost, StepReport};
use crate::storage::StorageFault;
use crate::workload::{Arrival, ClosedLoopWorkload, OpenLoopWorkload, Workload};

/// RNG stream label of the coordinator's workload generator. Replica `r`
/// uses stream `r`; no simulation has 2^64 − 1 replicas, so the label can
/// never collide with a replica stream.
const WORKLOAD_STREAM: u64 = u64::MAX;

/// When a scheduled node fault begins or ends: at an absolute simulated time,
/// or when the cluster (any honest replica) first reaches a view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// At this simulated time.
    At(SimTime),
    /// When the highest view observed across replicas first reaches `View`.
    AtView(View),
}

/// A scheduled crash (with optional recovery) of one replica.
///
/// A crashed node is blacked out at the network layer: events addressed to
/// it are discarded and — since it therefore never handles anything — it
/// sends nothing. Its internal timers are suspended too.
///
/// Recovery comes in three flavours. Without `amnesia` the node rejoins
/// passively with its pre-crash heap intact and catches up through the QCs
/// embedded in the traffic it starts receiving again — a network blip, not a
/// process death. With `amnesia` the node restarts from its latest checkpoint
/// (whatever [`bamboo_types::Config::checkpoint_interval`] last persisted, or
/// genesis), discards everything else it knew, and state-transfers the lost
/// history back from its peers — a machine that actually rebooted. With
/// `durable` (requires [`bamboo_types::Config::durable_log`]) the node
/// restarts from its own durable segment log and persisted checkpoint image,
/// optionally after a crash-point [`StorageFault`] mangled the log, and falls
/// back to state transfer only for whatever the log did not cover.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeFault {
    /// The replica to crash.
    pub node: NodeId,
    /// When the crash begins.
    pub crash: FaultTrigger,
    /// When the node recovers; `None` means it stays down.
    pub recover: Option<FaultTrigger>,
    /// Whether recovery loses all in-memory state (restart from checkpoint
    /// plus state transfer) instead of resuming the pre-crash heap.
    pub amnesia: bool,
    /// Whether recovery replays the replica's durable segment log (checkpoint
    /// image plus record replay) before falling back to state transfer.
    /// Takes precedence over `amnesia`.
    pub durable: bool,
    /// A crash-point storage fault applied to the durable log at the crash,
    /// exercising the torn-tail/corruption recovery paths. Only meaningful
    /// with `durable`.
    pub storage_fault: Option<StorageFault>,
}

/// How a recovered node rebuilds its state, resolved from the [`NodeFault`]
/// flags once and plumbed through the crash-flip machinery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecoverMode {
    /// Pre-crash heap intact: a network blip.
    Resume,
    /// Restart from the volatile checkpoint, state-transfer the rest.
    Amnesia,
    /// Replay the durable segment log (after an optional crash-point fault),
    /// state-transfer only the tail.
    Durable(Option<StorageFault>),
}

/// Run-level options that are not part of the shared Table-I [`Config`].
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Behavioural options applied to every replica.
    pub replica: ReplicaOptions,
    /// Crash (silence) one node from a given time onwards — used by the
    /// responsiveness experiment.
    pub silence_node_from: Option<(NodeId, SimTime)>,
    /// Network-fluctuation windows injected into the latency model.
    pub fluctuations: Vec<FluctuationWindow>,
    /// Additional link faults (partitions, group partitions, slow nodes).
    pub link_faults: Vec<LinkFault>,
    /// Scheduled node crashes/recoveries (time- or view-triggered).
    pub node_faults: Vec<NodeFault>,
    /// Per-link base-delay topology; `None` uses the homogeneous
    /// `Config::link_latency_mean/std` network of the paper.
    pub topology: Option<Topology>,
    /// Per-replica `t_CPU` overrides (heterogeneous-CPU deployments).
    pub cpu_overrides: Vec<(NodeId, SimDuration)>,
    /// Width of the workload generation window.
    pub workload_tick: SimDuration,
    /// Bucket width of the committed-throughput time series.
    pub series_bucket: SimDuration,
    /// The replica whose ledger is used for reporting; defaults to the
    /// highest-id (always honest) replica.
    pub observer: Option<NodeId>,
    /// Safety cap on the number of simulation events processed. The sharded
    /// engine checks the cap at window barriers, so a run may overshoot it
    /// by up to one window's worth of events.
    pub max_events: u64,
    /// Number of engine shards (worker threads). `1` (the default) runs the
    /// windowed engine inline on the calling thread; higher values partition
    /// replicas round-robin across that many OS threads. Clamped to the
    /// node count. Every thread count produces identical results.
    pub threads: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            replica: ReplicaOptions::default(),
            silence_node_from: None,
            fluctuations: Vec::new(),
            link_faults: Vec::new(),
            node_faults: Vec::new(),
            topology: None,
            cpu_overrides: Vec::new(),
            workload_tick: SimDuration::from_millis(1),
            series_bucket: SimDuration::from_millis(500),
            observer: None,
            max_events: 200_000_000,
            threads: 1,
        }
    }
}

/// A shard-local simulation event.
enum SimEvent {
    /// A message that passed ingress verification, delivered as the shared
    /// proof token. The sender's shard verifies each unique envelope **once**
    /// when it is absorbed and fans the `Arc`-backed token out, so a
    /// broadcast to `n − 1` recipients stages pointer bumps — the simulator
    /// counterpart of the verify pool's verify-once-fan-out trick. The
    /// verdict is a pure function of the (immutable) message bytes, so
    /// sharing it across recipients changes nothing observable; each
    /// recipient is still charged its own modeled verification CPU by the
    /// replica as before.
    Deliver {
        to: NodeId,
        token: VerifiedMessage,
    },
    /// A message that failed ingress verification. It is still delivered —
    /// each recipient books the rejection and is charged the modeled CPU cost
    /// of the verification work that exposed the forgery at its own busy
    /// server, exactly as with inline verification.
    DeliverForged {
        to: NodeId,
        message: SharedMessage,
    },
    Timer {
        node: NodeId,
        view: View,
    },
    ProposeNow {
        node: NodeId,
        view: View,
    },
    /// A batch of client requests arriving at a replica's edge. The host
    /// verifies the batch (4-wide, in signed-client mode), strips the
    /// signatures, and admits the transactions into the mempool.
    ClientBatch {
        to: NodeId,
        requests: Vec<ClientRequest>,
    },
    /// A state-transfer debounce/retry deadline armed by the replica.
    SyncTimer {
        node: NodeId,
    },
    /// A time-triggered node fault boundary: crash (`true`) or recover
    /// (`false`) the node, scheduled into the owning shard's queue.
    /// View-triggered boundaries are resolved by the coordinator at window
    /// barriers from the globally highest observed view. `mode` applies to
    /// recoveries only and selects how the node rebuilds its state.
    SetCrashed {
        node: NodeId,
        crashed: bool,
        mode: RecoverMode,
    },
}

/// The payload of a cross-shard delivery staged at a window barrier.
enum InjectionKind {
    /// A verified replica-to-replica message (the fanned-out proof token).
    Verified(VerifiedMessage),
    /// A forged replica-to-replica message, delivered for cost accounting.
    Forged(SharedMessage),
    /// A client arrival batch generated by the coordinator's workload tick.
    ClientBatch(Vec<ClientRequest>),
}

/// One event crossing a window barrier, with the canonical ordering key
/// `(deliver_at, origin, seq)` that makes injection order independent of the
/// shard layout: `origin` is the sending replica (or [`WORKLOAD_STREAM`] for
/// client batches) and `seq` its own send counter, both of which depend only
/// on that origin's execution order.
struct Injection {
    deliver_at: SimTime,
    origin: u64,
    seq: u64,
    to: NodeId,
    kind: InjectionKind,
}

/// What one shard hands back to the coordinator after executing a window.
struct WindowResult {
    shard: usize,
    /// Deliveries produced during the window, for other (or this) shard's
    /// next windows.
    outbox: Vec<Injection>,
    /// Transactions the observer replica committed, in commit order, so the
    /// coordinator can feed closed-loop clients.
    commits: Vec<(TxId, SimTime)>,
    /// Highest view any replica of this shard has reached.
    max_view: View,
    /// Events popped during the window.
    processed: u64,
    /// Timestamp of the shard's earliest still-pending event.
    next_event: Option<SimTime>,
}

/// A command sent to a shard worker.
enum ShardCmd {
    /// Boot every replica of the shard at time zero.
    Boot,
    /// Execute one window: apply crash flips, inject barrier deliveries,
    /// then drain the queue up to `limit` (exclusive).
    Window {
        limit: SimTime,
        window_start: SimTime,
        window_end: SimTime,
        injections: Vec<Injection>,
        /// `(node, crashed, mode)` — view-triggered fault boundaries
        /// resolved by the coordinator, applied at the window's opening edge.
        flips: Vec<(NodeId, bool, RecoverMode)>,
    },
    /// Stop and hand the shard state back for reporting.
    Finish,
}

/// The per-shard slice of the simulation: the shard's replicas (round-robin
/// `node % threads`), their RNG streams and busy servers, a private event
/// queue, clones of the network models, its own ingress verifier and metrics
/// accumulator. Everything a window needs, with no sharing.
struct ShardState {
    shard: usize,
    shards_total: usize,
    nodes_total: usize,
    observer: NodeId,
    /// Hosts at local index `l` own node `shard + l · shards_total`.
    hosts: Vec<NodeHost>,
    /// Per-replica latency RNG streams (`derive(node)` of the run seed).
    rngs: Vec<SimRng>,
    busy_until: Vec<SimTime>,
    /// Per-replica outbox sequence counters (the canonical-order tiebreak).
    send_seq: Vec<u64>,
    /// Crash state, global-indexed; only this shard's entries are consulted.
    crashed: Vec<bool>,
    queue: EventQueue<SimEvent>,
    latency: LatencyModel,
    nic: NicModel,
    auth: Authenticator,
    metrics: Metrics,
    /// Reused across every event of every window (cleared, capacity kept).
    effects: BufferedTransport,
    outbox: Vec<Injection>,
    commits: Vec<(TxId, SimTime)>,
    max_view: View,
    /// End of the window currently executing; staged deliveries must land at
    /// or beyond it (the conservative-lookahead invariant).
    window_end: SimTime,
}

/// Resolves the verify-once verdict for an outbound envelope, memoising it in
/// `verdict` so a broadcast checks the signature once and fans the result
/// out.
fn delivery_for(
    verdict: &mut Option<Result<VerifiedMessage, SharedMessage>>,
    auth: &mut Authenticator,
    sender: NodeId,
    message: &SharedMessage,
) -> InjectionKind {
    let verdict = verdict.get_or_insert_with(|| {
        auth.authenticate_shared(sender, message.clone())
            .map_err(|_| message.clone())
    });
    match verdict {
        Ok(token) => InjectionKind::Verified(token.clone()),
        Err(forged) => InjectionKind::Forged(forged.clone()),
    }
}

impl ShardState {
    fn local_index(&self, node: NodeId) -> usize {
        debug_assert_eq!(node.index() % self.shards_total, self.shard);
        node.index() / self.shards_total
    }

    fn node_at(&self, local: usize) -> NodeId {
        NodeId((self.shard + local * self.shards_total) as u64)
    }

    /// Boots every replica of this shard at time zero, staging boot-time
    /// sends (the view-1 leader's proposal) into the outbox.
    fn boot(&mut self) -> WindowResult {
        self.boot_in_place();
        self.result(0)
    }

    /// [`ShardState::boot`] without packaging a [`WindowResult`]: the
    /// sequential coordinator reads the outbox and commit log in place.
    fn boot_in_place(&mut self) {
        self.window_end = SimTime::ZERO;
        for local in 0..self.hosts.len() {
            let node = self.node_at(local);
            let mut effects = std::mem::take(&mut self.effects);
            effects.clear();
            let report = self.hosts[local].start(SimTime::ZERO, &mut effects);
            self.absorb(node, report, &mut effects, SimTime::ZERO);
            self.effects = effects;
        }
    }

    /// Executes one window: applies view-trigger crash flips, injects the
    /// barrier's canonical delivery batch, then drains the queue up to
    /// `limit` (exclusive).
    fn run_window(
        &mut self,
        limit: SimTime,
        window_start: SimTime,
        window_end: SimTime,
        mut injections: Vec<Injection>,
        flips: &[(NodeId, bool, RecoverMode)],
    ) -> WindowResult {
        let processed =
            self.run_window_in_place(limit, window_start, window_end, &mut injections, flips);
        self.result(processed)
    }

    /// [`ShardState::run_window`] draining a caller-owned injection buffer
    /// and leaving the outbox/commit log in place. The sequential
    /// (`threads = 1`) coordinator calls this directly so its steady state
    /// moves no buffers and allocates nothing; the sharded drivers wrap it in
    /// [`ShardState::run_window`]. Both paths execute the identical window
    /// code, which is what keeps every thread count bit-identical.
    fn run_window_in_place(
        &mut self,
        limit: SimTime,
        window_start: SimTime,
        window_end: SimTime,
        injections: &mut Vec<Injection>,
        flips: &[(NodeId, bool, RecoverMode)],
    ) -> u64 {
        self.window_end = window_end;
        for &(node, crashed, mode) in flips {
            let was = self.crashed[node.index()];
            self.crashed[node.index()] = crashed;
            // View-triggered recovery: the owning shard restarts the replica
            // at the window's opening edge — a barrier-aligned,
            // layout-invariant instant, so every thread count restarts it at
            // the same simulated time.
            if was && !crashed && node.index() % self.shards_total == self.shard {
                match mode {
                    RecoverMode::Resume => {}
                    RecoverMode::Amnesia => self.amnesia_restart(node, window_start),
                    RecoverMode::Durable(fault) => self.durable_restart(node, window_start, fault),
                }
            }
        }
        for injection in injections.drain(..) {
            let event = match injection.kind {
                InjectionKind::Verified(token) => SimEvent::Deliver {
                    to: injection.to,
                    token,
                },
                InjectionKind::Forged(message) => SimEvent::DeliverForged {
                    to: injection.to,
                    message,
                },
                InjectionKind::ClientBatch(requests) => SimEvent::ClientBatch {
                    to: injection.to,
                    requests,
                },
            };
            self.queue.schedule(injection.deliver_at, event);
        }
        let mut processed: u64 = 0;
        while let Some((time, event)) = self.queue.pop_if_before(limit) {
            processed += 1;
            match event {
                SimEvent::Deliver { to, token } => {
                    if self.crashed[to.index()] {
                        continue;
                    }
                    // The envelope was verified once in the sender's shard;
                    // the token hands it to the replica with no further
                    // wall-clock crypto (modeled costs are charged by the
                    // replica).
                    let local = self.local_index(to);
                    let start = time.max(self.busy_until[local]);
                    let mut effects = std::mem::take(&mut self.effects);
                    effects.clear();
                    let report = self.hosts[local].handle_verified(token, start, &mut effects);
                    self.absorb(to, report, &mut effects, start);
                    self.effects = effects;
                }
                SimEvent::DeliverForged { to, message } => {
                    if self.crashed[to.index()] {
                        continue;
                    }
                    // Book the rejection at the recipient's busy server with
                    // the modeled cost of discovering the forgery.
                    let local = self.local_index(to);
                    let start = time.max(self.busy_until[local]);
                    let report = self.hosts[local].reject_forged(&message);
                    let mut effects = std::mem::take(&mut self.effects);
                    effects.clear();
                    self.absorb(to, report, &mut effects, start);
                    self.effects = effects;
                }
                SimEvent::Timer { node, view } => {
                    if self.crashed[node.index()] {
                        continue;
                    }
                    self.dispatch(node, ReplicaEvent::TimerFired { view }, time);
                }
                SimEvent::ProposeNow { node, view } => {
                    if self.crashed[node.index()] {
                        continue;
                    }
                    self.dispatch(node, ReplicaEvent::ProposeNow { view }, time);
                }
                SimEvent::ClientBatch { to, requests } => {
                    if self.crashed[to.index()] {
                        continue;
                    }
                    // The edge verification stage lives in the host: in
                    // signed-client mode the batch is checked 4-wide (and
                    // charged as such) before the stripped transactions are
                    // admitted to the mempool.
                    let local = self.local_index(to);
                    let start = time.max(self.busy_until[local]);
                    let mut effects = std::mem::take(&mut self.effects);
                    effects.clear();
                    let report =
                        self.hosts[local].handle_client_batch(requests, start, &mut effects);
                    self.absorb(to, report, &mut effects, start);
                    self.effects = effects;
                }
                SimEvent::SyncTimer { node } => {
                    if self.crashed[node.index()] {
                        continue;
                    }
                    self.dispatch(node, ReplicaEvent::SyncTimer, time);
                }
                SimEvent::SetCrashed {
                    node,
                    crashed,
                    mode,
                } => {
                    let was = self.crashed[node.index()];
                    self.crashed[node.index()] = crashed;
                    if was && !crashed {
                        // Time-triggered recovery (always fires in the owning
                        // shard's queue).
                        match mode {
                            RecoverMode::Resume => {}
                            RecoverMode::Amnesia => self.amnesia_restart(node, time),
                            RecoverMode::Durable(fault) => self.durable_restart(node, time, fault),
                        }
                    }
                }
            }
        }
        processed
    }

    fn result(&mut self, processed: u64) -> WindowResult {
        WindowResult {
            shard: self.shard,
            outbox: std::mem::take(&mut self.outbox),
            commits: std::mem::take(&mut self.commits),
            max_view: self.max_view,
            processed,
            next_event: self.queue.peek_time(),
        }
    }

    fn dispatch(&mut self, node: NodeId, event: ReplicaEvent, time: SimTime) {
        // Model the replica as a single busy server: processing starts when
        // both the event has arrived and the CPU is free.
        let local = self.local_index(node);
        let start = time.max(self.busy_until[local]);
        let mut effects = std::mem::take(&mut self.effects);
        effects.clear();
        let report = self.hosts[local].handle(event, start, &mut effects);
        self.absorb(node, report, &mut effects, start);
        self.effects = effects;
    }

    /// Restarts `node` with amnesia at `time`: the replica rebuilds itself
    /// from its latest checkpoint and its restart effects (view timer, the
    /// immediate state-transfer request) flow through the same absorb path —
    /// and thus the same canonical barrier ordering — as any other step.
    fn amnesia_restart(&mut self, node: NodeId, time: SimTime) {
        let local = self.local_index(node);
        // A rebooted process starts with an idle CPU; whatever the busy
        // server was doing pre-crash died with it.
        self.busy_until[local] = time;
        let mut effects = std::mem::take(&mut self.effects);
        effects.clear();
        let report = self.hosts[local].restart_with_amnesia(time, &mut effects);
        self.absorb(node, report, &mut effects, time);
        self.effects = effects;
    }

    /// Restarts `node` from its durable segment log at `time`: the armed
    /// crash-point `fault` (if any) mangles the log first, then the replica
    /// replays checkpoint image plus surviving records and state-transfers
    /// only the tail. Degrades to an amnesia restart when the run has no
    /// durable log configured.
    fn durable_restart(&mut self, node: NodeId, time: SimTime, fault: Option<StorageFault>) {
        let local = self.local_index(node);
        self.busy_until[local] = time;
        let mut effects = std::mem::take(&mut self.effects);
        effects.clear();
        let report = self.hosts[local].restart_durable(time, fault, &mut effects);
        self.absorb(node, report, &mut effects, time);
        self.effects = effects;
    }

    /// Maps one step's effects onto the simulated substrate: commits into
    /// metrics (and the barrier commit log), timers and proposals onto the
    /// shard's own queue, outbound messages into the outbox.
    fn absorb(
        &mut self,
        node: NodeId,
        report: StepReport,
        effects: &mut BufferedTransport,
        start: SimTime,
    ) {
        let local = self.local_index(node);
        let finish = start + report.cpu;
        self.busy_until[local] = finish;

        // Track the shard-local view high-water mark; the coordinator
        // resolves view-triggered fault boundaries from the global maximum
        // at the next barrier.
        let view = self.hosts[local].replica().current_view();
        if view > self.max_view {
            self.max_view = view;
        }

        // Commits: record metrics at the observer replica only, so every
        // transaction is counted exactly once. The client-response delay is
        // drawn from the observer's own stream; the coordinator replays the
        // commit log into the workload at the barrier.
        if node == self.observer {
            for block in &report.committed {
                self.metrics.record_block();
                for tx in &block.payload {
                    let response_delay = self
                        .latency
                        .sample(&mut self.rngs[local], node, NodeId(u64::MAX), finish)
                        .unwrap_or(SimDuration::ZERO);
                    let confirmed = finish + response_delay;
                    // `finish` is the commit instant the client's
                    // submit→commit latency is measured against; `confirmed`
                    // adds the response leg (the paper's `t_L` term).
                    self.metrics.record_commit(tx.issued_at, finish, confirmed);
                    self.commits.push((tx.id, confirmed));
                }
            }
        }

        // Timers, delayed proposals and sync timers are self-events: they
        // stay in this shard's queue and may even fire within the current
        // window.
        for (view, deadline) in effects.timers.drain(..) {
            self.queue
                .schedule(deadline, SimEvent::Timer { node, view });
        }
        for (view, at) in effects.proposals.drain(..) {
            self.queue.schedule(at, SimEvent::ProposeNow { node, view });
        }
        for deadline in effects.sync_timers.drain(..) {
            self.queue.schedule(deadline, SimEvent::SyncTimer { node });
        }

        // Outbound messages leave the sender once its CPU is done. Each
        // unique envelope is verified at most once — lazily, on the first
        // recipient whose link actually delivers, so messages dropped by
        // partitions or dead links cost no wall-clock crypto — and every
        // further recipient gets an `Arc`-backed clone of the proof token (or
        // of the forged envelope): a broadcast stages n − 1 pointer bumps
        // instead of n − 1 envelope deep-copies and n − 1 redundant
        // signature checks. Deliveries go to the outbox for the barrier
        // exchange; the conservative lookahead guarantees they land at or
        // beyond the window end.
        for (dest, message) in effects.sends.drain(..) {
            let bytes = message.wire_size();
            let nic_delay = self.nic.transfer(bytes);
            let mut verdict: Option<Result<VerifiedMessage, SharedMessage>> = None;
            match dest {
                Some(to) => {
                    self.metrics.record_message(bytes);
                    if let Some(delay) =
                        self.latency.sample(&mut self.rngs[local], node, to, finish)
                    {
                        let kind = delivery_for(&mut verdict, &mut self.auth, node, &message);
                        self.stage(node, local, to, finish + nic_delay + delay, kind);
                    }
                }
                None => {
                    for to in 0..self.nodes_total as u64 {
                        let to = NodeId(to);
                        if to == node {
                            continue;
                        }
                        self.metrics.record_message(bytes);
                        if let Some(delay) =
                            self.latency.sample(&mut self.rngs[local], node, to, finish)
                        {
                            let kind = delivery_for(&mut verdict, &mut self.auth, node, &message);
                            self.stage(node, local, to, finish + nic_delay + delay, kind);
                        }
                    }
                }
            }
        }
    }

    /// Stages one delivery in the outbox under the sender's canonical
    /// sequence number.
    fn stage(
        &mut self,
        node: NodeId,
        local: usize,
        to: NodeId,
        deliver_at: SimTime,
        kind: InjectionKind,
    ) {
        debug_assert!(
            deliver_at >= self.window_end,
            "delivery at {deliver_at:?} undercuts the window barrier {:?} — lookahead violated",
            self.window_end
        );
        let seq = self.send_seq[local];
        self.send_seq[local] += 1;
        self.outbox.push(Injection {
            deliver_at,
            origin: node.0,
            seq,
            to,
            kind,
        });
    }
}

/// How the coordinator drives its shards over channels to scoped worker
/// threads. Single-shard (`threads = 1`) runs bypass the driver machinery:
/// [`SimRunner::coordinate_single`] drives one [`ShardState`] in place,
/// through the same window code.
trait ShardDriver {
    fn boot(&mut self) -> Vec<WindowResult>;
    fn run_window(
        &mut self,
        limit: SimTime,
        window_start: SimTime,
        window_end: SimTime,
        injections: Vec<Vec<Injection>>,
        flips: &[(NodeId, bool, RecoverMode)],
    ) -> Vec<WindowResult>;
    fn finish(self) -> Vec<ShardState>;
}

/// Runs each shard on its own scoped worker thread, exchanging commands and
/// window results over channels. The scope (held by the caller) joins the
/// workers after [`ShardDriver::finish`] collects their states.
struct ThreadShards {
    commands: Vec<mpsc::Sender<ShardCmd>>,
    results: mpsc::Receiver<WindowResult>,
    states: mpsc::Receiver<ShardState>,
}

impl ThreadShards {
    fn spawn<'scope>(
        scope: &'scope std::thread::Scope<'scope, '_>,
        shards: Vec<ShardState>,
    ) -> Self {
        let (result_tx, results) = mpsc::channel();
        let (state_tx, states) = mpsc::channel();
        let mut commands = Vec::with_capacity(shards.len());
        for mut shard in shards {
            let (command_tx, command_rx) = mpsc::channel::<ShardCmd>();
            let result_tx = result_tx.clone();
            let state_tx = state_tx.clone();
            scope.spawn(move || {
                while let Ok(command) = command_rx.recv() {
                    match command {
                        ShardCmd::Boot => {
                            if result_tx.send(shard.boot()).is_err() {
                                return;
                            }
                        }
                        ShardCmd::Window {
                            limit,
                            window_start,
                            window_end,
                            injections,
                            flips,
                        } => {
                            let result = shard.run_window(
                                limit,
                                window_start,
                                window_end,
                                injections,
                                &flips,
                            );
                            if result_tx.send(result).is_err() {
                                return;
                            }
                        }
                        ShardCmd::Finish => {
                            let _ = state_tx.send(shard);
                            return;
                        }
                    }
                }
            });
            commands.push(command_tx);
        }
        Self {
            commands,
            results,
            states,
        }
    }

    fn collect_results(&self) -> Vec<WindowResult> {
        let mut results: Vec<WindowResult> = (0..self.commands.len())
            .map(|_| self.results.recv().expect("shard worker alive"))
            .collect();
        results.sort_by_key(|result| result.shard);
        results
    }
}

impl ShardDriver for ThreadShards {
    fn boot(&mut self) -> Vec<WindowResult> {
        for command in &self.commands {
            command.send(ShardCmd::Boot).expect("shard worker alive");
        }
        self.collect_results()
    }

    fn run_window(
        &mut self,
        limit: SimTime,
        window_start: SimTime,
        window_end: SimTime,
        injections: Vec<Vec<Injection>>,
        flips: &[(NodeId, bool, RecoverMode)],
    ) -> Vec<WindowResult> {
        for (command, batch) in self.commands.iter().zip(injections) {
            command
                .send(ShardCmd::Window {
                    limit,
                    window_start,
                    window_end,
                    injections: batch,
                    flips: flips.to_vec(),
                })
                .expect("shard worker alive");
        }
        self.collect_results()
    }

    fn finish(self) -> Vec<ShardState> {
        for command in &self.commands {
            command.send(ShardCmd::Finish).expect("shard worker alive");
        }
        let mut states: Vec<ShardState> = (0..self.commands.len())
            .map(|_| self.states.recv().expect("shard worker alive"))
            .collect();
        states.sort_by_key(|state| state.shard);
        states
    }
}

/// A deterministic discrete-event simulation of one Bamboo deployment.
pub struct SimRunner {
    config: Config,
    protocol: ProtocolKind,
    options: RunOptions,
    hosts: Vec<NodeHost>,
    /// Template latency model; cloned per shard, and used directly by the
    /// coordinator for client-link delays.
    latency: LatencyModel,
    nic: NicModel,
    workload: Box<dyn Workload>,
    /// The workload generator's own RNG stream, independent of every
    /// replica's.
    workload_rng: SimRng,
    /// Reusable arrival buffer handed to the workload each tick (cleared,
    /// capacity kept — arrival generation allocates nothing in steady state).
    tick_arrivals: Vec<Arrival>,
    /// Reusable per-replica workload buckets (indexed by node id): arrivals
    /// of one tick are grouped here without allocating per-tick maps.
    tick_txs: Vec<Vec<ClientRequest>>,
    tick_latest: Vec<SimTime>,
    /// Unresolved view-triggered fault boundaries:
    /// `(node, view, crash?, recover mode)`.
    view_triggers: Vec<(NodeId, View, bool, RecoverMode)>,
    /// Highest view observed across all shards (drives view triggers).
    max_view_seen: View,
}

impl SimRunner {
    /// Builds a runner for `config` running `protocol` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (use [`Config::validate`] /
    /// the builder to construct valid configurations).
    pub fn new(config: Config, protocol: ProtocolKind, options: RunOptions) -> Self {
        config.validate().expect("invalid configuration");
        let topology = options.topology.clone().unwrap_or_else(|| {
            Topology::uniform(config.link_latency_mean, config.link_latency_std)
        });
        let mut latency = LatencyModel::with_topology(topology)
            .with_extra_delay(config.extra_delay, config.extra_delay_jitter);
        for window in &options.fluctuations {
            latency.add_fluctuation(*window);
        }
        for fault in &options.link_faults {
            latency.add_fault(*fault);
        }
        let nic = NicModel::new(config.bandwidth_bytes_per_sec);

        let hosts: Vec<NodeHost> = (0..config.nodes as u64)
            .map(|i| {
                let mut replica_options = options.replica;
                if let Some((node, from)) = options.silence_node_from {
                    if node == NodeId(i) {
                        replica_options.silence_from = Some(from);
                    }
                }
                if let Some(&(_, delay)) = options
                    .cpu_overrides
                    .iter()
                    .find(|(node, _)| *node == NodeId(i))
                {
                    replica_options.cpu_delay_override = Some(delay);
                }
                NodeHost::new(NodeId(i), protocol, config.clone(), replica_options)
            })
            .collect();

        let workload: Box<dyn Workload> = match config.arrival_rate {
            Some(rate) => {
                let mut open = OpenLoopWorkload::new(rate, config.payload_size, config.nodes);
                if let Some(clients) = config.client_population {
                    open = open.with_population(clients);
                }
                Box::new(open.with_signing(config.signed_requests))
            }
            None => Box::new(ClosedLoopWorkload::new(
                config.concurrency,
                config.payload_size,
                config.nodes,
            )),
        };

        let nodes = config.nodes;
        let workload_rng = SimRng::new(config.seed).derive(WORKLOAD_STREAM);
        Self {
            protocol,
            options,
            hosts,
            latency,
            nic,
            workload,
            workload_rng,
            tick_arrivals: Vec::new(),
            tick_txs: vec![Vec::new(); nodes],
            tick_latest: vec![SimTime::ZERO; nodes],
            view_triggers: Vec::new(),
            max_view_seen: View::GENESIS,
            config,
        }
    }

    /// The node whose ledger is reported.
    fn observer(&self) -> NodeId {
        self.options
            .observer
            .unwrap_or(NodeId(self.config.nodes as u64 - 1))
    }

    /// Runs the simulation to completion and produces the report.
    pub fn run(mut self) -> RunReport {
        let runtime = self.config.runtime;
        let end = SimTime::ZERO + runtime;
        let window_nanos = self.latency.lookahead().as_nanos().max(1);
        let shard_count = self.options.threads.max(1).min(self.config.nodes);
        let mut shards = self.build_shards(shard_count);
        let (processed, ticks, states) = if shard_count == 1 {
            // Single-shard runs skip the barrier-exchange machinery entirely:
            // the sequential coordinator drives the one shard in place, with
            // no window-result packaging and no buffer shuffling.
            let mut shard = shards.pop().expect("one shard");
            let (processed, ticks) = self.coordinate_single(&mut shard, end, window_nanos);
            (processed, ticks, vec![shard])
        } else {
            std::thread::scope(|scope| {
                let driver = ThreadShards::spawn(scope, shards);
                self.coordinate(driver, end, window_nanos)
            })
        };
        self.report(runtime, processed, ticks, states, shard_count)
    }

    /// Partitions the replicas round-robin into `shard_count` shard states
    /// and registers the node-fault schedule: time triggers become queue
    /// events in the owning shard, view triggers stay with the coordinator.
    fn build_shards(&mut self, shard_count: usize) -> Vec<ShardState> {
        let nodes = self.config.nodes;
        let observer = self.observer();
        let seed_rng = SimRng::new(self.config.seed);
        let signed_clients = self.config.signed_requests;
        let mut shards: Vec<ShardState> = (0..shard_count)
            .map(|shard| ShardState {
                shard,
                shards_total: shard_count,
                nodes_total: nodes,
                observer,
                hosts: Vec::new(),
                rngs: Vec::new(),
                busy_until: Vec::new(),
                send_seq: Vec::new(),
                crashed: vec![false; nodes],
                queue: EventQueue::new(),
                latency: self.latency.clone(),
                nic: self.nic,
                auth: {
                    let mut auth = Authenticator::for_nodes(nodes);
                    auth.set_signed_clients(signed_clients);
                    auth
                },
                metrics: Metrics::new(self.options.series_bucket),
                effects: BufferedTransport::new(),
                outbox: Vec::new(),
                commits: Vec::new(),
                max_view: View::GENESIS,
                window_end: SimTime::ZERO,
            })
            .collect();
        for (index, host) in std::mem::take(&mut self.hosts).into_iter().enumerate() {
            let shard = &mut shards[index % shard_count];
            shard.hosts.push(host);
            shard.rngs.push(seed_rng.derive(index as u64));
            shard.busy_until.push(SimTime::ZERO);
            shard.send_seq.push(0);
        }
        for fault in self.options.node_faults.clone() {
            let owner = fault.node.index() % shard_count;
            let mode = if fault.durable {
                RecoverMode::Durable(fault.storage_fault)
            } else if fault.amnesia {
                RecoverMode::Amnesia
            } else {
                RecoverMode::Resume
            };
            match fault.crash {
                FaultTrigger::At(at) => shards[owner].queue.schedule(
                    at,
                    SimEvent::SetCrashed {
                        node: fault.node,
                        crashed: true,
                        mode: RecoverMode::Resume,
                    },
                ),
                FaultTrigger::AtView(view) => {
                    self.view_triggers
                        .push((fault.node, view, true, RecoverMode::Resume));
                }
            }
            match fault.recover {
                Some(FaultTrigger::At(at)) => shards[owner].queue.schedule(
                    at,
                    SimEvent::SetCrashed {
                        node: fault.node,
                        crashed: false,
                        mode,
                    },
                ),
                Some(FaultTrigger::AtView(view)) => {
                    self.view_triggers.push((fault.node, view, false, mode));
                }
                None => {}
            }
        }
        shards
    }

    /// The barrier loop: boots the shards, then repeatedly picks the next
    /// non-empty window (skipping empty ones), generates the workload ticks
    /// that fall inside it, exchanges the canonical delivery batch, and runs
    /// every shard through the window. Returns the total events processed by
    /// shards, the ticks generated, and the final shard states.
    fn coordinate<D: ShardDriver>(
        &mut self,
        mut driver: D,
        end: SimTime,
        window_nanos: u64,
    ) -> (u64, u64, Vec<ShardState>) {
        let mut results = driver.boot();
        let shard_count = results.len();
        let mut processed: u64 = 0;
        let mut ticks: u64 = 0;
        let mut next_tick = SimTime::ZERO;
        let mut client_seq: u64 = 0;
        loop {
            // Replay the observer's commit log (in commit order; only its
            // shard produces entries) so closed-loop clients can reissue.
            for result in &mut results {
                for (tx, at) in result.commits.drain(..) {
                    self.workload.on_commit(tx, at);
                }
            }
            // Resolve view-triggered fault boundaries from the globally
            // highest view; the flips take effect at the window about to run.
            let mut flips: Vec<(NodeId, bool, RecoverMode)> = Vec::new();
            let global_view = results
                .iter()
                .map(|result| result.max_view)
                .max()
                .unwrap_or(View::GENESIS);
            if global_view > self.max_view_seen {
                self.max_view_seen = global_view;
                let triggers = &mut self.view_triggers;
                triggers.retain(|&(node, view, crash, mode)| {
                    if view <= global_view {
                        flips.push((node, crash, mode));
                        false
                    } else {
                        true
                    }
                });
            }
            let mut injections: Vec<Injection> = Vec::new();
            for result in &mut results {
                injections.append(&mut result.outbox);
            }
            if processed + ticks > self.options.max_events {
                break;
            }
            // Skip straight to the window holding the earliest pending work.
            let mut earliest: Option<SimTime> = None;
            let mut fold = |t: SimTime| {
                earliest = Some(earliest.map_or(t, |e| e.min(t)));
            };
            for result in &results {
                if let Some(t) = result.next_event {
                    fold(t);
                }
            }
            for injection in &injections {
                fold(injection.deliver_at);
            }
            if next_tick <= end {
                fold(next_tick);
            }
            let Some(earliest) = earliest else {
                break;
            };
            if earliest > end {
                break;
            }
            let window_index = earliest.0 / window_nanos;
            let window_start = SimTime(window_index.saturating_mul(window_nanos));
            let window_end = SimTime((window_index + 1).saturating_mul(window_nanos));
            let limit = SimTime(window_end.0.min(end.0.saturating_add(1)));
            // Workload ticks falling inside this window generate their
            // client batches now; their deliveries land at or beyond the
            // barrier (client links obey the same lookahead floor).
            while next_tick <= end && next_tick < window_end {
                self.generate_tick(next_tick, &mut injections, &mut client_seq);
                ticks += 1;
                next_tick += self.options.workload_tick;
            }
            // Canonical barrier order: layout-invariant regardless of which
            // shard produced which entry.
            injections.sort_unstable_by(|a, b| {
                (a.deliver_at, a.origin, a.seq).cmp(&(b.deliver_at, b.origin, b.seq))
            });
            let mut per_shard: Vec<Vec<Injection>> = (0..shard_count).map(|_| Vec::new()).collect();
            for injection in injections {
                let owner = injection.to.index() % shard_count;
                per_shard[owner].push(injection);
            }
            results = driver.run_window(limit, window_start, window_end, per_shard, &flips);
            processed += results.iter().map(|result| result.processed).sum::<u64>();
        }
        (processed, ticks, driver.finish())
    }

    /// The sequential (`threads = 1`) twin of [`SimRunner::coordinate`]: one
    /// shard, driven in place on the calling thread. Windows still exist —
    /// they are the ordering epochs that make same-nanosecond ties resolve
    /// identically across every thread count — but all of the barrier
    /// machinery falls away: no window-result packaging, no per-shard
    /// partitioning, no flip cloning, and the injection buffer swaps with the
    /// shard's outbox, so the steady state allocates nothing.
    fn coordinate_single(
        &mut self,
        shard: &mut ShardState,
        end: SimTime,
        window_nanos: u64,
    ) -> (u64, u64) {
        shard.boot_in_place();
        let mut processed: u64 = 0;
        let mut ticks: u64 = 0;
        let mut next_tick = SimTime::ZERO;
        let mut client_seq: u64 = 0;
        let mut injections: Vec<Injection> = Vec::new();
        let mut flips: Vec<(NodeId, bool, RecoverMode)> = Vec::new();
        loop {
            for (tx, at) in shard.commits.drain(..) {
                self.workload.on_commit(tx, at);
            }
            flips.clear();
            let global_view = shard.max_view;
            if global_view > self.max_view_seen {
                self.max_view_seen = global_view;
                let pending = &mut flips;
                self.view_triggers.retain(|&(node, view, crash, mode)| {
                    if view <= global_view {
                        pending.push((node, crash, mode));
                        false
                    } else {
                        true
                    }
                });
            }
            // The previous window drained `injections`; reuse its capacity
            // for the outbox and vice versa.
            debug_assert!(injections.is_empty());
            std::mem::swap(&mut injections, &mut shard.outbox);
            if processed + ticks > self.options.max_events {
                break;
            }
            let mut earliest: Option<SimTime> = None;
            let mut fold = |t: SimTime| {
                earliest = Some(earliest.map_or(t, |e| e.min(t)));
            };
            if let Some(t) = shard.queue.peek_time() {
                fold(t);
            }
            for injection in &injections {
                fold(injection.deliver_at);
            }
            if next_tick <= end {
                fold(next_tick);
            }
            let Some(earliest) = earliest else {
                break;
            };
            if earliest > end {
                break;
            }
            let window_index = earliest.0 / window_nanos;
            let window_start = SimTime(window_index.saturating_mul(window_nanos));
            let window_end = SimTime((window_index + 1).saturating_mul(window_nanos));
            let limit = SimTime(window_end.0.min(end.0.saturating_add(1)));
            while next_tick <= end && next_tick < window_end {
                self.generate_tick(next_tick, &mut injections, &mut client_seq);
                ticks += 1;
                next_tick += self.options.workload_tick;
            }
            injections.sort_unstable_by(|a, b| {
                (a.deliver_at, a.origin, a.seq).cmp(&(b.deliver_at, b.origin, b.seq))
            });
            processed +=
                shard.run_window_in_place(limit, window_start, window_end, &mut injections, &flips);
        }
        (processed, ticks)
    }

    /// Generates the client arrivals of one workload tick, grouping them into
    /// per-replica batches exactly like the event-queued tick of the
    /// single-queue engine did.
    fn generate_tick(
        &mut self,
        now: SimTime,
        injections: &mut Vec<Injection>,
        client_seq: &mut u64,
    ) {
        let window_end = now + self.options.workload_tick;
        let mut arrivals = std::mem::take(&mut self.tick_arrivals);
        arrivals.clear();
        self.workload
            .arrivals(now, window_end, &mut self.workload_rng, &mut arrivals);
        if arrivals.is_empty() {
            self.tick_arrivals = arrivals;
            return;
        }
        // Group arrivals per replica to keep the event count manageable.
        // The buckets are reusable `Vec`s indexed by node id and visited in
        // ascending node order, so the workload stream is consumed in a
        // deterministic order.
        for arrival in arrivals.drain(..) {
            let index = arrival.replica.index();
            let issued_at = arrival.issued_at;
            let latest = &mut self.tick_latest[index];
            let bucket = &mut self.tick_txs[index];
            if bucket.is_empty() {
                *latest = issued_at;
            } else {
                *latest = (*latest).max(issued_at);
            }
            bucket.push(arrival.into_request());
        }
        self.tick_arrivals = arrivals;
        for index in 0..self.tick_txs.len() {
            if self.tick_txs[index].is_empty() {
                continue;
            }
            let replica = NodeId(index as u64);
            // Client -> replica one-way delay, from the workload's stream.
            let delay = self
                .latency
                .sample(&mut self.workload_rng, NodeId(u64::MAX), replica, now)
                .unwrap_or(SimDuration::ZERO);
            let deliver_at = self.tick_latest[index] + delay;
            let requests = std::mem::take(&mut self.tick_txs[index]);
            injections.push(Injection {
                deliver_at,
                origin: WORKLOAD_STREAM,
                seq: *client_seq,
                to: replica,
                kind: InjectionKind::ClientBatch(requests),
            });
            *client_seq += 1;
        }
    }

    fn report(
        self,
        runtime: SimDuration,
        processed: u64,
        ticks: u64,
        states: Vec<ShardState>,
        threads: usize,
    ) -> RunReport {
        let nodes = self.config.nodes;
        // Reassemble hosts in node order and fold the per-shard metrics and
        // queue statistics. Ticks are generated at the coordinator and never
        // occupy a queue slot, but they count as engine events for continuity
        // with the event-queued tick of earlier engines.
        let mut metrics = Metrics::new(self.options.series_bucket);
        let mut events_scheduled: u64 = ticks;
        let mut queue_peak: u64 = 0;
        let mut max_shard_peak: u64 = 0;
        let mut slots: Vec<Option<NodeHost>> = (0..nodes).map(|_| None).collect();
        for state in states {
            let ShardState {
                shard,
                shards_total,
                hosts,
                queue,
                metrics: shard_metrics,
                ..
            } = state;
            events_scheduled += queue.total_scheduled();
            let peak = queue.live_high_water() as u64;
            queue_peak += peak;
            max_shard_peak = max_shard_peak.max(peak);
            metrics.merge(shard_metrics);
            for (local, host) in hosts.into_iter().enumerate() {
                slots[shard + local * shards_total] = Some(host);
            }
        }
        let hosts: Vec<NodeHost> = slots
            .into_iter()
            .map(|slot| slot.expect("every node is owned by exactly one shard"))
            .collect();
        // Fold the per-replica mempool admission counters into the run
        // metrics so backpressure (shard-full rejections) is never silent.
        for host in &hosts {
            metrics.record_mempool(&host.replica().mempool_stats());
        }

        let observer = hosts[self.observer().index()].replica();
        let duration_secs = runtime.as_secs_f64();
        let committed_txs = metrics.committed_txs();
        let committed_blocks = observer.ledger().len() as u64;
        let views_advanced = observer.current_view().as_u64().saturating_sub(1).max(1);
        let latency = metrics.latency();
        let (messages_sent, bytes_sent) = metrics.network_counters();

        // Safety audit: per-replica conflicting commits plus pairwise ledger
        // prefix consistency across honest replicas.
        let mut safety_violations: u64 =
            hosts.iter().map(|h| h.replica().safety_violations()).sum();
        let honest: Vec<&Replica> = hosts
            .iter()
            .map(NodeHost::replica)
            .filter(|r| !self.config.is_byzantine(r.id()))
            .collect();
        for pair in honest.windows(2) {
            if !pair[0].ledger().consistent_with(pair[1].ledger()) {
                safety_violations += 1;
            }
        }

        let recovery = self.recovery_report(&hosts);

        RunReport {
            protocol: self.protocol,
            nodes: self.config.nodes,
            byz_nodes: self.config.byz_nodes,
            duration_secs,
            throughput_tx_per_sec: committed_txs as f64 / duration_secs,
            latency,
            client_latency: metrics.client_latency(),
            committed_txs,
            committed_blocks,
            views_advanced,
            chain_growth_rate: committed_blocks as f64 / views_advanced as f64,
            block_interval: observer.ledger().average_block_interval(),
            timeout_view_changes: observer.timeout_view_changes(),
            messages_sent,
            bytes_sent,
            throughput_series: metrics.throughput_series(),
            safety_violations,
            rejected_messages: hosts.iter().map(NodeHost::auth_rejections).sum(),
            client_auth_rejections: hosts.iter().map(NodeHost::client_auth_rejections).sum(),
            mempool: metrics.mempool_totals(),
            pending_txs: self.workload.total_issued().saturating_sub(committed_txs),
            events_processed: processed + ticks,
            events_scheduled,
            queue_peak_len: queue_peak,
            max_shard_queue_peak: max_shard_peak,
            threads,
            ledger_fingerprint: observer.ledger().fingerprint().to_hex(),
            recovery,
        }
    }

    /// Fold the per-replica recovery counters and audit catch-up: every
    /// amnesia-recovered replica must end the run with a committed prefix
    /// matching the chain the never-crashed honest majority agrees on.
    fn recovery_report(&self, hosts: &[NodeHost]) -> RecoveryReport {
        let mut recovery = RecoveryReport::default();
        let crashed: Vec<NodeId> = self.options.node_faults.iter().map(|f| f.node).collect();
        // The reference chain is the shortest committed ledger among honest
        // replicas that never crashed — everything an amnesia-recovered node
        // must have re-learned through checkpoints and state transfer.
        let mut reference: Option<&Replica> = None;
        for host in hosts {
            let replica = host.replica();
            let stats = replica.recovery_stats();
            recovery.checkpoints_taken += stats.checkpoints_taken;
            recovery.sync_requests += stats.sync_requests_sent;
            recovery.sync_responses += stats.sync_responses_served;
            recovery.sync_bytes += stats.sync_bytes_received;
            recovery.snapshots_installed += stats.snapshots_installed;
            recovery.blocks_synced += stats.blocks_synced;
            recovery.orphans_evicted += replica.forest().stats().orphans_evicted;
            if stats.restarted_at.is_some() {
                recovery.amnesia_recoveries += 1;
            }
            recovery.durable_restarts += stats.durable_restarts;
            recovery.records_replayed += stats.records_replayed;
            recovery.corrupt_records_discarded += stats.corrupt_records_discarded;
            let replay_ms = stats.log_replay_nanos as f64 / 1_000_000.0;
            recovery.log_replay_ms = recovery.log_replay_ms.max(replay_ms);
            if !self.config.is_byzantine(replica.id()) && !crashed.contains(&replica.id()) {
                let shorter = reference
                    .map(|r| replica.ledger().len() < r.ledger().len())
                    .unwrap_or(true);
                if shorter {
                    reference = Some(replica);
                }
            }
        }
        let Some(reference) = reference else {
            // Every honest node crashed at some point; there is no
            // uninterrupted chain to audit against.
            return recovery;
        };
        let target_len = reference.ledger().len();
        let target = reference.ledger().chain_fingerprint_prefix(target_len);
        for host in hosts {
            let replica = host.replica();
            let stats = replica.recovery_stats();
            if stats.restarted_at.is_none() {
                continue;
            }
            let caught_up = replica.ledger().len() >= target_len
                && replica.ledger().chain_fingerprint_prefix(target_len) == target;
            if !caught_up {
                recovery.recovered_caught_up = false;
            }
            if let (Some(restarted), Some(done)) = (stats.restarted_at, stats.caught_up_at) {
                let millis = done.since(restarted).as_nanos() as f64 / 1_000_000.0;
                recovery.recovery_time_ms = recovery.recovery_time_ms.max(millis);
            }
        }
        recovery
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_types::ByzantineStrategy;

    fn base_config(nodes: usize, rate: f64) -> Config {
        Config::builder()
            .nodes(nodes)
            .block_size(100)
            .runtime(SimDuration::from_millis(400))
            .arrival_rate(rate)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn hotstuff_run_commits_transactions_without_violations() {
        let report = SimRunner::new(
            base_config(4, 5_000.0),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run();
        assert_eq!(report.safety_violations, 0);
        assert!(report.committed_txs > 0, "no transactions committed");
        assert!(report.latency.mean_ms > 0.0);
        assert!(report.chain_growth_rate > 0.5);
    }

    #[test]
    fn all_three_protocols_complete_and_agree_on_safety() {
        for protocol in [
            ProtocolKind::HotStuff,
            ProtocolKind::TwoChainHotStuff,
            ProtocolKind::Streamlet,
        ] {
            let report =
                SimRunner::new(base_config(4, 2_000.0), protocol, RunOptions::default()).run();
            assert_eq!(report.safety_violations, 0, "{protocol} violated safety");
            assert!(report.committed_blocks > 0, "{protocol} committed nothing");
        }
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let a = SimRunner::new(
            base_config(4, 3_000.0),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run();
        let b = SimRunner::new(
            base_config(4, 3_000.0),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run();
        assert_eq!(a.committed_txs, b.committed_txs);
        assert_eq!(a.committed_blocks, b.committed_blocks);
        assert_eq!(a.views_advanced, b.views_advanced);
        assert!((a.latency.mean_ms - b.latency.mean_ms).abs() < 1e-9);
    }

    #[test]
    fn sharded_runs_match_the_single_thread_engine() {
        let single = SimRunner::new(
            base_config(4, 3_000.0),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run();
        // 3 shards gives uneven shard sizes (2/1/1); 4 puts every replica on
        // its own thread; 8 exercises the clamp to the node count.
        for threads in [2usize, 3, 4, 8] {
            let sharded = SimRunner::new(
                base_config(4, 3_000.0),
                ProtocolKind::HotStuff,
                RunOptions {
                    threads,
                    ..RunOptions::default()
                },
            )
            .run();
            assert_eq!(
                single.ledger_fingerprint, sharded.ledger_fingerprint,
                "threads={threads} diverged"
            );
            assert_eq!(single.committed_txs, sharded.committed_txs);
            assert_eq!(single.events_processed, sharded.events_processed);
            assert_eq!(single.events_scheduled, sharded.events_scheduled);
            assert_eq!(single.messages_sent, sharded.messages_sent);
            assert!((single.latency.mean_ms - sharded.latency.mean_ms).abs() < 1e-12);
        }
    }

    #[test]
    fn two_chain_commits_with_lower_latency_than_three_chain() {
        let hs = SimRunner::new(
            base_config(4, 2_000.0),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run();
        let two = SimRunner::new(
            base_config(4, 2_000.0),
            ProtocolKind::TwoChainHotStuff,
            RunOptions::default(),
        )
        .run();
        assert!(
            two.latency.mean_ms < hs.latency.mean_ms,
            "2CHS {} ms should beat HS {} ms",
            two.latency.mean_ms,
            hs.latency.mean_ms
        );
        assert!(two.block_interval < hs.block_interval);
    }

    #[test]
    fn silence_attack_reduces_chain_growth() {
        let honest = SimRunner::new(
            base_config(4, 2_000.0),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run();
        let mut cfg = base_config(4, 2_000.0);
        cfg.byz_nodes = 1;
        cfg.byzantine_strategy = ByzantineStrategy::Silence;
        cfg.timeout = SimDuration::from_millis(20);
        let attacked = SimRunner::new(cfg, ProtocolKind::HotStuff, RunOptions::default()).run();
        assert_eq!(attacked.safety_violations, 0);
        assert!(attacked.chain_growth_rate < honest.chain_growth_rate);
        assert!(attacked.timeout_view_changes > 0);
    }

    #[test]
    fn time_triggered_crash_and_recovery_preserve_safety() {
        let mut cfg = base_config(4, 2_000.0);
        cfg.timeout = SimDuration::from_millis(20);
        let healthy =
            SimRunner::new(cfg.clone(), ProtocolKind::HotStuff, RunOptions::default()).run();
        let options = RunOptions {
            node_faults: vec![NodeFault {
                node: NodeId(0),
                crash: FaultTrigger::At(SimTime(100_000_000)),
                recover: Some(FaultTrigger::At(SimTime(250_000_000))),
                amnesia: false,
                durable: false,
                storage_fault: None,
            }],
            ..RunOptions::default()
        };
        let crashed = SimRunner::new(cfg, ProtocolKind::HotStuff, options).run();
        assert_eq!(crashed.safety_violations, 0);
        assert!(crashed.committed_txs > 0, "cluster survives f = 1 crash");
        assert!(
            crashed.timeout_view_changes > 0,
            "crashed leader views must time out"
        );
        assert!(
            crashed.committed_txs < healthy.committed_txs,
            "crash window should cost throughput ({} vs {})",
            crashed.committed_txs,
            healthy.committed_txs
        );
    }

    #[test]
    fn view_triggered_crash_fires_when_the_cluster_reaches_the_view() {
        let mut cfg = base_config(4, 2_000.0);
        cfg.timeout = SimDuration::from_millis(20);
        let options = RunOptions {
            node_faults: vec![NodeFault {
                node: NodeId(1),
                crash: FaultTrigger::AtView(View(4)),
                recover: None,
                amnesia: false,
                durable: false,
                storage_fault: None,
            }],
            ..RunOptions::default()
        };
        let report = SimRunner::new(cfg, ProtocolKind::HotStuff, options).run();
        assert_eq!(report.safety_violations, 0);
        assert!(report.committed_txs > 0);
        assert!(
            report.timeout_view_changes > 0,
            "node 1's unrecovered crash must cost its leader views"
        );
        // Determinism with view-triggered faults, across thread counts: the
        // trigger resolves at a window barrier from the global maximum view,
        // which is layout-invariant.
        for threads in [1usize, 2, 4] {
            let mut cfg2 = base_config(4, 2_000.0);
            cfg2.timeout = SimDuration::from_millis(20);
            let options2 = RunOptions {
                node_faults: vec![NodeFault {
                    node: NodeId(1),
                    crash: FaultTrigger::AtView(View(4)),
                    recover: None,
                    amnesia: false,
                    durable: false,
                    storage_fault: None,
                }],
                threads,
                ..RunOptions::default()
            };
            let again = SimRunner::new(cfg2, ProtocolKind::HotStuff, options2).run();
            assert_eq!(
                report.ledger_fingerprint, again.ledger_fingerprint,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn forking_attack_is_harmless_to_streamlet_but_not_to_hotstuff() {
        let mut cfg = base_config(4, 2_000.0);
        cfg.byz_nodes = 1;
        cfg.byzantine_strategy = ByzantineStrategy::Forking;
        let hs = SimRunner::new(cfg.clone(), ProtocolKind::HotStuff, RunOptions::default()).run();
        let sl = SimRunner::new(cfg, ProtocolKind::Streamlet, RunOptions::default()).run();
        assert_eq!(hs.safety_violations, 0);
        assert_eq!(sl.safety_violations, 0);
        assert!(
            sl.chain_growth_rate > 0.9,
            "streamlet CGR {} should stay near 1 under forking",
            sl.chain_growth_rate
        );
        assert!(
            hs.chain_growth_rate < sl.chain_growth_rate + 1e-9,
            "hotstuff CGR {} vs streamlet {}",
            hs.chain_growth_rate,
            sl.chain_growth_rate
        );
    }
}

//! The discrete-event simulation runner.
//!
//! [`SimRunner`] wires `N` replicas (each behind a [`NodeHost`]), a workload
//! generator, and the network / NIC / CPU models of `bamboo-sim` into one
//! deterministic simulation. One run corresponds to one benchmark
//! configuration in the paper (one point of a figure); the sweep logic lives
//! in [`crate::Benchmarker`].
//!
//! The runner is a *backend* of the shared runtime layer
//! ([`crate::runtime`]): replica effects are collected through a
//! [`BufferedTransport`] and mapped onto the event queue with the paper's
//! delay composition (§V) — normally distributed propagation delay, `2·m/b`
//! NIC serialisation, and a constant CPU cost per crypto operation (modelled
//! as a per-replica busy server, which is what produces the M/D/1-style
//! queueing behaviour the analytical model assumes).
//!
//! The engine keeps allocation and crypto off its hot path: outbound
//! envelopes are `Arc`-backed ([`bamboo_types::SharedMessage`]), so a
//! broadcast *schedules* n − 1 pointer bumps, and each unique envelope is
//! cryptographically verified **at most once** — lazily, on the first
//! recipient whose link delivers — with the [`VerifiedMessage`] token fanned
//! out (forged envelopes are delivered as rejections so every recipient
//! still books the modeled cost). At delivery, a unicast recipient recovers
//! the owned message for free (`Arc::try_unwrap`); broadcast recipients
//! share the envelope, and what they copy is only what they retain (a
//! proposal's block stays behind its own `Arc`; a timeout vote a pacemaker
//! stores is copied into that pacemaker). Workload arrivals group into
//! reusable per-replica buckets, and the event queue is the
//! slab/bucket-wheel [`EventQueue`]. None of this perturbs the simulation:
//! verification verdicts are pure functions of immutable message bytes, and
//! event order, RNG consumption and modeled charges are identical to the
//! naive engine — the golden-replay tests pin ledgers byte-for-byte against
//! the pre-rewrite implementation.

use bamboo_sim::{
    EventQueue, FluctuationWindow, LatencyModel, LinkFault, NicModel, SimRng, Topology,
};
use bamboo_types::{
    Authenticator, Config, NodeId, ProtocolKind, SharedMessage, SimDuration, SimTime, Transaction,
    VerifiedMessage, View,
};

use crate::metrics::{Metrics, RunReport};
use crate::replica::{Replica, ReplicaEvent, ReplicaOptions};
use crate::runtime::{BufferedTransport, NodeHost, StepReport};
use crate::workload::{ClosedLoopWorkload, OpenLoopWorkload, Workload};

/// When a scheduled node fault begins or ends: at an absolute simulated time,
/// or when the cluster (any honest replica) first reaches a view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultTrigger {
    /// At this simulated time.
    At(SimTime),
    /// When the highest view observed across replicas first reaches `View`.
    AtView(View),
}

/// A scheduled crash (with optional recovery) of one replica.
///
/// A crashed node is blacked out at the network layer: events addressed to
/// it are discarded and — since it therefore never handles anything — it
/// sends nothing. Its internal timers are suspended too; after recovery the
/// node rejoins passively and catches up through the QCs embedded in the
/// traffic it starts receiving again, exactly like a rebooted machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeFault {
    /// The replica to crash.
    pub node: NodeId,
    /// When the crash begins.
    pub crash: FaultTrigger,
    /// When the node recovers; `None` means it stays down.
    pub recover: Option<FaultTrigger>,
}

/// Run-level options that are not part of the shared Table-I [`Config`].
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Behavioural options applied to every replica.
    pub replica: ReplicaOptions,
    /// Crash (silence) one node from a given time onwards — used by the
    /// responsiveness experiment.
    pub silence_node_from: Option<(NodeId, SimTime)>,
    /// Network-fluctuation windows injected into the latency model.
    pub fluctuations: Vec<FluctuationWindow>,
    /// Additional link faults (partitions, group partitions, slow nodes).
    pub link_faults: Vec<LinkFault>,
    /// Scheduled node crashes/recoveries (time- or view-triggered).
    pub node_faults: Vec<NodeFault>,
    /// Per-link base-delay topology; `None` uses the homogeneous
    /// `Config::link_latency_mean/std` network of the paper.
    pub topology: Option<Topology>,
    /// Per-replica `t_CPU` overrides (heterogeneous-CPU deployments).
    pub cpu_overrides: Vec<(NodeId, SimDuration)>,
    /// Width of the workload generation window.
    pub workload_tick: SimDuration,
    /// Bucket width of the committed-throughput time series.
    pub series_bucket: SimDuration,
    /// The replica whose ledger is used for reporting; defaults to the
    /// highest-id (always honest) replica.
    pub observer: Option<NodeId>,
    /// Safety cap on the number of simulation events processed.
    pub max_events: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            replica: ReplicaOptions::default(),
            silence_node_from: None,
            fluctuations: Vec::new(),
            link_faults: Vec::new(),
            node_faults: Vec::new(),
            topology: None,
            cpu_overrides: Vec::new(),
            workload_tick: SimDuration::from_millis(1),
            series_bucket: SimDuration::from_millis(500),
            observer: None,
            max_events: 200_000_000,
        }
    }
}

enum SimEvent {
    /// A message that passed ingress verification, delivered as the shared
    /// proof token. The runner verifies each unique envelope **once** when it
    /// is absorbed and fans the `Arc`-backed token out, so a broadcast to
    /// `n − 1` recipients schedules pointer bumps — the simulator counterpart
    /// of the verify pool's verify-once-fan-out trick. The verdict is a pure
    /// function of the (immutable) message bytes, so sharing it across
    /// recipients changes nothing observable; each recipient is still charged
    /// its own modeled verification CPU by the replica as before.
    Deliver {
        to: NodeId,
        token: VerifiedMessage,
    },
    /// A message that failed ingress verification. It is still delivered —
    /// each recipient books the rejection and is charged the modeled CPU cost
    /// of the verification work that exposed the forgery at its own busy
    /// server, exactly as with inline verification.
    DeliverForged {
        to: NodeId,
        message: SharedMessage,
    },
    Timer {
        node: NodeId,
        view: View,
    },
    ProposeNow {
        node: NodeId,
        view: View,
    },
    ClientBatch {
        to: NodeId,
        txs: Vec<Transaction>,
    },
    WorkloadTick,
    /// A time-triggered node fault boundary: crash (`true`) or recover
    /// (`false`) the node. View-triggered boundaries are resolved inline
    /// when the cluster's highest observed view advances.
    SetCrashed {
        node: NodeId,
        crashed: bool,
    },
}

/// The simulated network substrate: event queue plus the delay models and the
/// randomness they consume. Split out of [`SimRunner`] so the runner can
/// borrow hosts and network disjointly.
struct SimNet {
    latency: LatencyModel,
    nic: NicModel,
    rng: SimRng,
    queue: EventQueue<SimEvent>,
    /// The runner's ingress verifier: every unique outbound envelope is
    /// checked here exactly once; recipients receive the fanned-out verdict.
    auth: Authenticator,
}

/// A deterministic discrete-event simulation of one Bamboo deployment.
pub struct SimRunner {
    config: Config,
    protocol: ProtocolKind,
    options: RunOptions,
    hosts: Vec<NodeHost>,
    net: SimNet,
    workload: Box<dyn Workload>,
    metrics: Metrics,
    busy_until: Vec<SimTime>,
    /// Reusable per-replica workload buckets (indexed by node id): arrivals
    /// of one tick are grouped here without allocating per-tick maps.
    tick_txs: Vec<Vec<Transaction>>,
    tick_latest: Vec<SimTime>,
    /// Per-replica crash state (node faults); crashed nodes receive nothing.
    crashed: Vec<bool>,
    /// Unresolved view-triggered fault boundaries: `(node, view, crash?)`.
    view_triggers: Vec<(NodeId, View, bool)>,
    /// Highest view observed across all replicas (drives view triggers).
    max_view_seen: View,
}

impl SimRunner {
    /// Builds a runner for `config` running `protocol` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (use [`Config::validate`] /
    /// the builder to construct valid configurations).
    pub fn new(config: Config, protocol: ProtocolKind, options: RunOptions) -> Self {
        config.validate().expect("invalid configuration");
        let topology = options.topology.clone().unwrap_or_else(|| {
            Topology::uniform(config.link_latency_mean, config.link_latency_std)
        });
        let mut latency = LatencyModel::with_topology(topology)
            .with_extra_delay(config.extra_delay, config.extra_delay_jitter);
        for window in &options.fluctuations {
            latency.add_fluctuation(*window);
        }
        for fault in &options.link_faults {
            latency.add_fault(*fault);
        }
        let nic = NicModel::new(config.bandwidth_bytes_per_sec);
        let rng = SimRng::new(config.seed);

        let hosts: Vec<NodeHost> = (0..config.nodes as u64)
            .map(|i| {
                let mut replica_options = options.replica;
                if let Some((node, from)) = options.silence_node_from {
                    if node == NodeId(i) {
                        replica_options.silence_from = Some(from);
                    }
                }
                if let Some(&(_, delay)) = options
                    .cpu_overrides
                    .iter()
                    .find(|(node, _)| *node == NodeId(i))
                {
                    replica_options.cpu_delay_override = Some(delay);
                }
                NodeHost::new(NodeId(i), protocol, config.clone(), replica_options)
            })
            .collect();

        let workload: Box<dyn Workload> = match config.arrival_rate {
            Some(rate) => Box::new(OpenLoopWorkload::new(
                rate,
                config.payload_size,
                config.nodes,
            )),
            None => Box::new(ClosedLoopWorkload::new(
                config.concurrency,
                config.payload_size,
                config.nodes,
            )),
        };

        let metrics = Metrics::new(options.series_bucket);
        let nodes = config.nodes;
        Self {
            protocol,
            options,
            hosts,
            net: SimNet {
                latency,
                nic,
                rng,
                queue: EventQueue::new(),
                auth: Authenticator::for_nodes(nodes),
            },
            workload,
            metrics,
            busy_until: Vec::new(),
            tick_txs: vec![Vec::new(); nodes],
            tick_latest: vec![SimTime::ZERO; nodes],
            crashed: vec![false; nodes],
            view_triggers: Vec::new(),
            max_view_seen: View::GENESIS,
            config,
        }
    }

    /// The node whose ledger is reported.
    fn observer(&self) -> NodeId {
        self.options
            .observer
            .unwrap_or(NodeId(self.config.nodes as u64 - 1))
    }

    /// Runs the simulation to completion and produces the report.
    pub fn run(mut self) -> RunReport {
        let runtime = self.config.runtime;
        let end = SimTime::ZERO + runtime;
        self.busy_until = vec![SimTime::ZERO; self.config.nodes];

        // Register the node-fault schedule: time triggers become events,
        // view triggers are kept aside and resolved as views advance.
        for fault in self.options.node_faults.clone() {
            match fault.crash {
                FaultTrigger::At(at) => self.net.queue.schedule(
                    at,
                    SimEvent::SetCrashed {
                        node: fault.node,
                        crashed: true,
                    },
                ),
                FaultTrigger::AtView(view) => {
                    self.view_triggers.push((fault.node, view, true));
                }
            }
            match fault.recover {
                Some(FaultTrigger::At(at)) => self.net.queue.schedule(
                    at,
                    SimEvent::SetCrashed {
                        node: fault.node,
                        crashed: false,
                    },
                ),
                Some(FaultTrigger::AtView(view)) => {
                    self.view_triggers.push((fault.node, view, false));
                }
                None => {}
            }
        }

        // Boot every replica through the shared runtime layer.
        for index in 0..self.hosts.len() {
            let mut effects = BufferedTransport::new();
            let report = self.hosts[index].start(SimTime::ZERO, &mut effects);
            self.absorb(NodeId(index as u64), report, effects, SimTime::ZERO);
        }
        self.net
            .queue
            .schedule(SimTime::ZERO, SimEvent::WorkloadTick);

        let mut processed: u64 = 0;
        while let Some((time, event)) = self.net.queue.pop() {
            if time > end {
                break;
            }
            processed += 1;
            if processed > self.options.max_events {
                break;
            }
            match event {
                SimEvent::WorkloadTick => self.handle_workload_tick(time, end),
                SimEvent::Deliver { to, token } => {
                    if self.crashed[to.index()] {
                        continue;
                    }
                    // The envelope was verified once when absorbed; the token
                    // hands it to the replica with no further wall-clock
                    // crypto (modeled costs are charged by the replica).
                    let start = time.max(self.busy_until[to.index()]);
                    let mut effects = BufferedTransport::new();
                    let report = self.hosts[to.index()].handle_verified(token, start, &mut effects);
                    self.absorb(to, report, effects, start);
                }
                SimEvent::DeliverForged { to, message } => {
                    if self.crashed[to.index()] {
                        continue;
                    }
                    // Book the rejection at the recipient's busy server with
                    // the modeled cost of discovering the forgery.
                    let start = time.max(self.busy_until[to.index()]);
                    let report = self.hosts[to.index()].reject_forged(&message);
                    self.absorb(to, report, BufferedTransport::new(), start);
                }
                SimEvent::Timer { node, view } => {
                    if self.crashed[node.index()] {
                        continue;
                    }
                    self.dispatch(node, ReplicaEvent::TimerFired { view }, time);
                }
                SimEvent::ProposeNow { node, view } => {
                    if self.crashed[node.index()] {
                        continue;
                    }
                    self.dispatch(node, ReplicaEvent::ProposeNow { view }, time);
                }
                SimEvent::ClientBatch { to, txs } => {
                    if self.crashed[to.index()] {
                        continue;
                    }
                    self.dispatch(to, ReplicaEvent::ClientRequests(txs), time);
                }
                SimEvent::SetCrashed { node, crashed } => {
                    self.crashed[node.index()] = crashed;
                }
            }
        }
        self.report(runtime, processed)
    }

    fn handle_workload_tick(&mut self, now: SimTime, end: SimTime) {
        let window_end = now + self.options.workload_tick;
        let arrivals = self.workload.arrivals(now, window_end, &mut self.net.rng);
        if !arrivals.is_empty() {
            // Group arrivals per replica to keep the event count manageable.
            // The buckets are reusable `Vec`s indexed by node id — no per-tick
            // map allocations — and are visited in ascending node order, the
            // same order the previous BTreeMap grouping produced, so the RNG
            // stream (one latency sample per non-empty bucket) is unchanged.
            for arrival in arrivals {
                let index = arrival.replica.index();
                let latest = &mut self.tick_latest[index];
                let bucket = &mut self.tick_txs[index];
                if bucket.is_empty() {
                    *latest = arrival.issued_at;
                } else {
                    *latest = (*latest).max(arrival.issued_at);
                }
                bucket.push(arrival.transaction);
            }
            for index in 0..self.tick_txs.len() {
                if self.tick_txs[index].is_empty() {
                    continue;
                }
                let replica = NodeId(index as u64);
                // Client -> replica one-way delay.
                let delay = self
                    .net
                    .latency
                    .sample(&mut self.net.rng, NodeId(u64::MAX), replica, now)
                    .unwrap_or(SimDuration::ZERO);
                let deliver_at = self.tick_latest[index] + delay;
                let txs = std::mem::take(&mut self.tick_txs[index]);
                self.net
                    .queue
                    .schedule(deliver_at, SimEvent::ClientBatch { to: replica, txs });
            }
        }
        if window_end <= end {
            self.net.queue.schedule(window_end, SimEvent::WorkloadTick);
        }
    }

    fn dispatch(&mut self, node: NodeId, event: ReplicaEvent, time: SimTime) {
        // Model the replica as a single busy server: processing starts when
        // both the event has arrived and the CPU is free.
        let start = time.max(self.busy_until[node.index()]);
        let mut effects = BufferedTransport::new();
        let report = self.hosts[node.index()].handle(event, start, &mut effects);
        self.absorb(node, report, effects, start);
    }

    /// Maps one step's effects onto the simulated substrate: commits into
    /// metrics, timers and proposals onto the queue, outbound messages onto
    /// the network models.
    fn absorb(
        &mut self,
        node: NodeId,
        report: StepReport,
        effects: BufferedTransport,
        start: SimTime,
    ) {
        let finish = start + report.cpu;
        self.busy_until[node.index()] = finish;

        // Resolve view-triggered fault boundaries: a trigger fires when the
        // highest view observed anywhere in the cluster first reaches it.
        if !self.view_triggers.is_empty() {
            let view = self.hosts[node.index()].replica().current_view();
            if view > self.max_view_seen {
                self.max_view_seen = view;
                let crashed = &mut self.crashed;
                self.view_triggers.retain(|&(target, trigger, crash)| {
                    if trigger <= view {
                        crashed[target.index()] = crash;
                        false
                    } else {
                        true
                    }
                });
            }
        }

        // Commits: record metrics at the observer replica only, so every
        // transaction is counted exactly once, and feed closed-loop clients.
        if node == self.observer() {
            for block in &report.committed {
                self.metrics.record_block();
                for tx in &block.payload {
                    let response_delay = self
                        .net
                        .latency
                        .sample(&mut self.net.rng, node, NodeId(u64::MAX), finish)
                        .unwrap_or(SimDuration::ZERO);
                    let confirmed = finish + response_delay;
                    self.metrics.record_commit(tx.issued_at, confirmed);
                    self.workload.on_commit(tx.id, confirmed);
                }
            }
        }

        // Timers and delayed proposals.
        for (view, deadline) in effects.timers {
            self.net
                .queue
                .schedule(deadline, SimEvent::Timer { node, view });
        }
        for (view, at) in effects.proposals {
            self.net
                .queue
                .schedule(at, SimEvent::ProposeNow { node, view });
        }

        // Outbound messages leave the sender once its CPU is done. Each
        // unique envelope is verified at most once — lazily, on the first
        // recipient whose link actually delivers, so messages dropped by
        // partitions or dead links cost no wall-clock crypto — and every
        // further recipient gets an `Arc`-backed clone of the proof token (or
        // of the forged envelope): a broadcast schedules n − 1 pointer bumps
        // instead of n − 1 envelope deep-copies and n − 1 redundant
        // signature checks. Verdicts are pure functions of the immutable
        // message bytes, so the sharing is unobservable to the simulation.
        for (dest, message) in effects.sends {
            let bytes = message.wire_size();
            let nic_delay = self.net.nic.transfer(bytes);
            let mut verdict: Option<Result<VerifiedMessage, SharedMessage>> = None;
            let mut event_for = |net: &mut SimNet, to: NodeId| {
                let verdict = verdict.get_or_insert_with(|| {
                    net.auth
                        .authenticate_shared(node, message.clone())
                        .map_err(|_| message.clone())
                });
                match verdict {
                    Ok(token) => SimEvent::Deliver {
                        to,
                        token: token.clone(),
                    },
                    Err(message) => SimEvent::DeliverForged {
                        to,
                        message: message.clone(),
                    },
                }
            };
            match dest {
                Some(to) => {
                    self.metrics.record_message(bytes);
                    if let Some(delay) =
                        self.net.latency.sample(&mut self.net.rng, node, to, finish)
                    {
                        let event = event_for(&mut self.net, to);
                        self.net.queue.schedule(finish + nic_delay + delay, event);
                    }
                }
                None => {
                    for to in 0..self.config.nodes as u64 {
                        let to = NodeId(to);
                        if to == node {
                            continue;
                        }
                        self.metrics.record_message(bytes);
                        if let Some(delay) =
                            self.net.latency.sample(&mut self.net.rng, node, to, finish)
                        {
                            let event = event_for(&mut self.net, to);
                            self.net.queue.schedule(finish + nic_delay + delay, event);
                        }
                    }
                }
            }
        }
    }

    fn report(self, runtime: SimDuration, events_processed: u64) -> RunReport {
        let observer = self.hosts[self.observer().index()].replica();
        let duration_secs = runtime.as_secs_f64();
        let committed_txs = self.metrics.committed_txs();
        let committed_blocks = observer.ledger().len() as u64;
        let views_advanced = observer.current_view().as_u64().saturating_sub(1).max(1);
        let latency = self.metrics.latency();
        let (messages_sent, bytes_sent) = self.metrics.network_counters();

        // Safety audit: per-replica conflicting commits plus pairwise ledger
        // prefix consistency across honest replicas.
        let mut safety_violations: u64 = self
            .hosts
            .iter()
            .map(|h| h.replica().safety_violations())
            .sum();
        let honest: Vec<&Replica> = self
            .hosts
            .iter()
            .map(NodeHost::replica)
            .filter(|r| !self.config.is_byzantine(r.id()))
            .collect();
        for pair in honest.windows(2) {
            if !pair[0].ledger().consistent_with(pair[1].ledger()) {
                safety_violations += 1;
            }
        }

        RunReport {
            protocol: self.protocol,
            nodes: self.config.nodes,
            byz_nodes: self.config.byz_nodes,
            duration_secs,
            throughput_tx_per_sec: committed_txs as f64 / duration_secs,
            latency,
            committed_txs,
            committed_blocks,
            views_advanced,
            chain_growth_rate: committed_blocks as f64 / views_advanced as f64,
            block_interval: observer.ledger().average_block_interval(),
            timeout_view_changes: observer.timeout_view_changes(),
            messages_sent,
            bytes_sent,
            throughput_series: self.metrics.throughput_series(),
            safety_violations,
            rejected_messages: self.hosts.iter().map(NodeHost::auth_rejections).sum(),
            pending_txs: self.workload.total_issued().saturating_sub(committed_txs),
            events_processed,
            events_scheduled: self.net.queue.total_scheduled(),
            queue_peak_len: self.net.queue.live_high_water() as u64,
            ledger_fingerprint: observer.ledger().fingerprint().to_hex(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_types::ByzantineStrategy;

    fn base_config(nodes: usize, rate: f64) -> Config {
        Config::builder()
            .nodes(nodes)
            .block_size(100)
            .runtime(SimDuration::from_millis(400))
            .arrival_rate(rate)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn hotstuff_run_commits_transactions_without_violations() {
        let report = SimRunner::new(
            base_config(4, 5_000.0),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run();
        assert_eq!(report.safety_violations, 0);
        assert!(report.committed_txs > 0, "no transactions committed");
        assert!(report.latency.mean_ms > 0.0);
        assert!(report.chain_growth_rate > 0.5);
    }

    #[test]
    fn all_three_protocols_complete_and_agree_on_safety() {
        for protocol in [
            ProtocolKind::HotStuff,
            ProtocolKind::TwoChainHotStuff,
            ProtocolKind::Streamlet,
        ] {
            let report =
                SimRunner::new(base_config(4, 2_000.0), protocol, RunOptions::default()).run();
            assert_eq!(report.safety_violations, 0, "{protocol} violated safety");
            assert!(report.committed_blocks > 0, "{protocol} committed nothing");
        }
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let a = SimRunner::new(
            base_config(4, 3_000.0),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run();
        let b = SimRunner::new(
            base_config(4, 3_000.0),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run();
        assert_eq!(a.committed_txs, b.committed_txs);
        assert_eq!(a.committed_blocks, b.committed_blocks);
        assert_eq!(a.views_advanced, b.views_advanced);
        assert!((a.latency.mean_ms - b.latency.mean_ms).abs() < 1e-9);
    }

    #[test]
    fn two_chain_commits_with_lower_latency_than_three_chain() {
        let hs = SimRunner::new(
            base_config(4, 2_000.0),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run();
        let two = SimRunner::new(
            base_config(4, 2_000.0),
            ProtocolKind::TwoChainHotStuff,
            RunOptions::default(),
        )
        .run();
        assert!(
            two.latency.mean_ms < hs.latency.mean_ms,
            "2CHS {} ms should beat HS {} ms",
            two.latency.mean_ms,
            hs.latency.mean_ms
        );
        assert!(two.block_interval < hs.block_interval);
    }

    #[test]
    fn silence_attack_reduces_chain_growth() {
        let honest = SimRunner::new(
            base_config(4, 2_000.0),
            ProtocolKind::HotStuff,
            RunOptions::default(),
        )
        .run();
        let mut cfg = base_config(4, 2_000.0);
        cfg.byz_nodes = 1;
        cfg.byzantine_strategy = ByzantineStrategy::Silence;
        cfg.timeout = SimDuration::from_millis(20);
        let attacked = SimRunner::new(cfg, ProtocolKind::HotStuff, RunOptions::default()).run();
        assert_eq!(attacked.safety_violations, 0);
        assert!(attacked.chain_growth_rate < honest.chain_growth_rate);
        assert!(attacked.timeout_view_changes > 0);
    }

    #[test]
    fn time_triggered_crash_and_recovery_preserve_safety() {
        let mut cfg = base_config(4, 2_000.0);
        cfg.timeout = SimDuration::from_millis(20);
        let healthy =
            SimRunner::new(cfg.clone(), ProtocolKind::HotStuff, RunOptions::default()).run();
        let options = RunOptions {
            node_faults: vec![NodeFault {
                node: NodeId(0),
                crash: FaultTrigger::At(SimTime(100_000_000)),
                recover: Some(FaultTrigger::At(SimTime(250_000_000))),
            }],
            ..RunOptions::default()
        };
        let crashed = SimRunner::new(cfg, ProtocolKind::HotStuff, options).run();
        assert_eq!(crashed.safety_violations, 0);
        assert!(crashed.committed_txs > 0, "cluster survives f = 1 crash");
        assert!(
            crashed.timeout_view_changes > 0,
            "crashed leader views must time out"
        );
        assert!(
            crashed.committed_txs < healthy.committed_txs,
            "crash window should cost throughput ({} vs {})",
            crashed.committed_txs,
            healthy.committed_txs
        );
    }

    #[test]
    fn view_triggered_crash_fires_when_the_cluster_reaches_the_view() {
        let mut cfg = base_config(4, 2_000.0);
        cfg.timeout = SimDuration::from_millis(20);
        let options = RunOptions {
            node_faults: vec![NodeFault {
                node: NodeId(1),
                crash: FaultTrigger::AtView(View(4)),
                recover: None,
            }],
            ..RunOptions::default()
        };
        let report = SimRunner::new(cfg, ProtocolKind::HotStuff, options).run();
        assert_eq!(report.safety_violations, 0);
        assert!(report.committed_txs > 0);
        assert!(
            report.timeout_view_changes > 0,
            "node 1's unrecovered crash must cost its leader views"
        );
        // Determinism with view-triggered faults.
        let mut cfg2 = base_config(4, 2_000.0);
        cfg2.timeout = SimDuration::from_millis(20);
        let options2 = RunOptions {
            node_faults: vec![NodeFault {
                node: NodeId(1),
                crash: FaultTrigger::AtView(View(4)),
                recover: None,
            }],
            ..RunOptions::default()
        };
        let again = SimRunner::new(cfg2, ProtocolKind::HotStuff, options2).run();
        assert_eq!(report.ledger_fingerprint, again.ledger_fingerprint);
    }

    #[test]
    fn forking_attack_is_harmless_to_streamlet_but_not_to_hotstuff() {
        let mut cfg = base_config(4, 2_000.0);
        cfg.byz_nodes = 1;
        cfg.byzantine_strategy = ByzantineStrategy::Forking;
        let hs = SimRunner::new(cfg.clone(), ProtocolKind::HotStuff, RunOptions::default()).run();
        let sl = SimRunner::new(cfg, ProtocolKind::Streamlet, RunOptions::default()).run();
        assert_eq!(hs.safety_violations, 0);
        assert_eq!(sl.safety_violations, 0);
        assert!(
            sl.chain_growth_rate > 0.9,
            "streamlet CGR {} should stay near 1 under forking",
            sl.chain_growth_rate
        );
        assert!(
            hs.chain_growth_rate < sl.chain_growth_rate + 1e-9,
            "hotstuff CGR {} vs streamlet {}",
            hs.chain_growth_rate,
            sl.chain_growth_rate
        );
    }
}

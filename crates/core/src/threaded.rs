//! A live, multi-threaded in-process cluster.
//!
//! The deterministic simulator is what the benchmarks use; this module
//! provides the complementary "real concurrency" deployment mode that the
//! original Bamboo gets from its Go-channel transport: every replica runs on
//! its own OS thread, messages travel over `crossbeam` channels, and time is
//! the real wall clock. The examples use it to show the public API driving an
//! actually concurrent cluster.
//!
//! The threaded cluster re-uses the exact same [`Replica`] state machine as
//! the simulator — only the event loop differs.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use bamboo_types::{
    Config, Message, NodeId, ProtocolKind, SimTime, Transaction, View,
};

use crate::replica::{Destination, HandleResult, Replica, ReplicaEvent, ReplicaOptions};

/// Summary of one threaded run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Committed blocks per replica (indexed by node id).
    pub committed_blocks: Vec<usize>,
    /// Committed transactions observed at replica 0.
    pub committed_txs: u64,
    /// Highest view reached across replicas.
    pub max_view: u64,
    /// Whether all honest ledgers were pairwise consistent at shutdown.
    pub ledgers_consistent: bool,
}

enum ThreadEvent {
    Inbound { from: NodeId, message: Message },
    Client(Vec<Transaction>),
    #[allow(dead_code)]
    Timer { view: View },
    Shutdown,
}

/// A running in-process cluster of replica threads.
pub struct ThreadedCluster {
    config: Config,
    senders: Vec<Sender<ThreadEvent>>,
    handles: Vec<JoinHandle<Replica>>,
    started_at: Instant,
    committed_txs: Arc<Mutex<u64>>,
}

impl ThreadedCluster {
    /// Spawns `config.nodes` replica threads running `protocol`.
    pub fn spawn(config: Config, protocol: ProtocolKind) -> Self {
        let nodes = config.nodes;
        let mut senders: Vec<Sender<ThreadEvent>> = Vec::with_capacity(nodes);
        let mut receivers: Vec<Receiver<ThreadEvent>> = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let started_at = Instant::now();
        let committed_txs = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::with_capacity(nodes);
        for (index, receiver) in receivers.into_iter().enumerate() {
            let id = NodeId(index as u64);
            let config = config.clone();
            let peers = senders.clone();
            let committed = Arc::clone(&committed_txs);
            let handle = std::thread::spawn(move || {
                run_replica_thread(id, protocol, config, receiver, peers, started_at, committed)
            });
            handles.push(handle);
        }
        Self {
            config,
            senders,
            handles,
            started_at,
            committed_txs,
        }
    }

    /// Submits a batch of client transactions to a replica.
    pub fn submit(&self, replica: NodeId, txs: Vec<Transaction>) {
        if let Some(sender) = self.senders.get(replica.index()) {
            let _ = sender.send(ThreadEvent::Client(txs));
        }
    }

    /// Convenience: submits `count` zero-payload transactions round-robin
    /// across all replicas.
    pub fn submit_round_robin(&self, count: u64, payload: usize) {
        let now = SimTime(self.started_at.elapsed().as_nanos() as u64);
        for seq in 0..count {
            let replica = NodeId(seq % self.config.nodes as u64);
            let tx = Transaction::new(NodeId(999), seq, payload, now);
            self.submit(replica, vec![tx]);
        }
    }

    /// Committed transactions observed so far (at replica 0).
    pub fn committed_txs(&self) -> u64 {
        *self.committed_txs.lock()
    }

    /// Lets the cluster run for `duration` of wall-clock time.
    pub fn run_for(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    /// Stops every replica thread and returns the final report.
    pub fn shutdown(self) -> ClusterReport {
        for sender in &self.senders {
            let _ = sender.send(ThreadEvent::Shutdown);
        }
        let replicas: Vec<Replica> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("replica thread panicked"))
            .collect();
        let committed_blocks: Vec<usize> = replicas.iter().map(|r| r.ledger().len()).collect();
        let max_view = replicas
            .iter()
            .map(|r| r.current_view().as_u64())
            .max()
            .unwrap_or(0);
        let mut consistent = true;
        for pair in replicas.windows(2) {
            if !pair[0].ledger().consistent_with(pair[1].ledger()) {
                consistent = false;
            }
        }
        ClusterReport {
            committed_blocks,
            committed_txs: *self.committed_txs.lock(),
            max_view,
            ledgers_consistent: consistent,
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_replica_thread(
    id: NodeId,
    protocol: ProtocolKind,
    config: Config,
    receiver: Receiver<ThreadEvent>,
    peers: Vec<Sender<ThreadEvent>>,
    started_at: Instant,
    committed_txs: Arc<Mutex<u64>>,
) -> Replica {
    let timeout = Duration::from_nanos(config.timeout.as_nanos());
    let mut replica = Replica::new(id, protocol, config, ReplicaOptions::default());
    let now = || SimTime(started_at.elapsed().as_nanos() as u64);

    let mut pending_timer: Option<(View, SimTime)> = None;
    let process = |_replica: &mut Replica,
                       result: HandleResult,
                       pending_timer: &mut Option<(View, SimTime)>| {
        if id == NodeId(0) {
            let newly: u64 = result.committed.iter().map(|b| b.payload.len() as u64).sum();
            if newly > 0 {
                *committed_txs.lock() += newly;
            }
        }
        for (view, deadline) in result.timers {
            *pending_timer = Some((view, deadline));
        }
        for outbound in result.outbound {
            match outbound.to {
                Destination::Node(node) => {
                    if let Some(sender) = peers.get(node.index()) {
                        let _ = sender.send(ThreadEvent::Inbound {
                            from: id,
                            message: outbound.message.clone(),
                        });
                    }
                }
                Destination::AllReplicas => {
                    for (index, sender) in peers.iter().enumerate() {
                        if index != id.index() {
                            let _ = sender.send(ThreadEvent::Inbound {
                                from: id,
                                message: outbound.message.clone(),
                            });
                        }
                    }
                }
            }
        }
        // Delayed proposals degrade to immediate proposals on the threaded
        // runtime (it is a demo path, not a measurement path).
        let _ = result.delayed_proposals;
    };

    let start_result = replica.start(now());
    process(&mut replica, start_result, &mut pending_timer);

    loop {
        // Fire an expired view timer.
        if let Some((view, deadline)) = pending_timer {
            if now() >= deadline {
                pending_timer = None;
                let result = replica.handle(ReplicaEvent::TimerFired { view }, now());
                process(&mut replica, result, &mut pending_timer);
                continue;
            }
        }
        match receiver.recv_timeout(timeout.min(Duration::from_millis(5))) {
            Ok(ThreadEvent::Shutdown) => break,
            Ok(ThreadEvent::Inbound { from, message }) => {
                let result = replica.handle(ReplicaEvent::Message { from, message }, now());
                process(&mut replica, result, &mut pending_timer);
            }
            Ok(ThreadEvent::Client(txs)) => {
                let result = replica.handle(ReplicaEvent::ClientRequests(txs), now());
                process(&mut replica, result, &mut pending_timer);
            }
            Ok(ThreadEvent::Timer { view }) => {
                let result = replica.handle(ReplicaEvent::TimerFired { view }, now());
                process(&mut replica, result, &mut pending_timer);
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
        }
    }
    replica
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_types::SimDuration;

    #[test]
    fn threaded_cluster_commits_and_stays_consistent() {
        let config = Config::builder()
            .nodes(4)
            .block_size(20)
            .timeout(SimDuration::from_millis(50))
            .build()
            .unwrap();
        let cluster = ThreadedCluster::spawn(config, ProtocolKind::HotStuff);
        cluster.submit_round_robin(400, 16);
        cluster.run_for(Duration::from_millis(400));
        let report = cluster.shutdown();
        assert!(report.max_view > 2, "views advanced: {}", report.max_view);
        assert!(
            report.committed_blocks.iter().any(|&c| c > 0),
            "some replica committed blocks: {:?}",
            report.committed_blocks
        );
        assert!(report.ledgers_consistent);
    }
}

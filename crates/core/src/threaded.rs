//! A live, multi-threaded in-process cluster.
//!
//! The deterministic simulator is what the benchmarks use; this module
//! provides the complementary "real concurrency" deployment mode that the
//! original Bamboo gets from its Go-channel transport: every replica runs on
//! its own OS thread, messages travel over `std::sync::mpsc` channels, and
//! time is the real wall clock.
//!
//! The threaded cluster is a thin backend over the shared runtime layer
//! ([`crate::runtime`]): the same [`NodeHost`] drives the same replica state
//! machine as the simulator, and all backend-specific behaviour lives in
//! the (private) `ThreadTransport` — immediate channel delivery plus a list
//! of armed view timers checked against the wall clock. Because the timers
//! are real, a stalled or silenced leader cannot hang the cluster: every
//! replica times out, broadcasts its timeout vote, and the view advances
//! without requiring any message traffic to keep the loop turning.
//!
//! Inbound consensus messages are authenticated before they reach a replica.
//! By default they flow through a cluster-level [`VerifyPool`]: transports
//! submit raw messages, the pool's workers check every signature off the
//! consensus threads, and replicas only ever receive
//! [`bamboo_types::VerifiedMessage`] proof tokens (a broadcast is verified
//! once, not once per recipient). A cluster spawned with zero verify workers
//! falls back to inline verification inside [`NodeHost::handle`] on each
//! replica thread — same guarantee, serialised onto the consensus thread.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bamboo_crypto::KeyPair;
use bamboo_types::{
    ClientRequest, Config, Message, NodeId, ProtocolKind, SharedMessage, SimTime, Transaction,
    VerifiedMessage, View,
};

use crate::replica::{ReplicaEvent, ReplicaOptions};
use crate::runtime::{NodeHost, StepReport, Transport};
use crate::storage::{SegmentLog, StorageFault};
use crate::verify::{VerifyHandle, VerifyPool};

/// Distinguishes the storage directories of clusters spawned by the same
/// process (tests spawn several), on top of the per-process component.
static CLUSTER_SEQ: AtomicU64 = AtomicU64::new(0);

/// Summary of one threaded run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Committed blocks per replica (indexed by node id).
    pub committed_blocks: Vec<usize>,
    /// Committed transactions observed at replica 0.
    pub committed_txs: u64,
    /// Highest view reached across replicas.
    pub max_view: u64,
    /// Whether all honest ledgers were pairwise consistent at shutdown.
    pub ledgers_consistent: bool,
    /// Conflicting-commit events observed across all replicas (must be 0).
    pub safety_violations: u64,
    /// Timeout-driven view changes summed across replicas.
    pub timeout_view_changes: u64,
    /// Messages rejected by the authentication stage (verify pool plus
    /// inline ingress) as forged or malformed.
    pub auth_rejections: u64,
    /// Signed client requests rejected at the replica edge as forged
    /// (signed-client mode only; always 0 otherwise).
    pub client_auth_rejections: u64,
}

enum ThreadEvent {
    /// A raw inbound message (inline-verification mode: the receiving
    /// replica's `NodeHost` authenticates it). Delivered as the shared
    /// envelope, so a broadcast pushes n − 1 pointer bumps into the peer
    /// channels instead of n − 1 envelope copies.
    Inbound {
        from: NodeId,
        message: SharedMessage,
    },
    /// A message the verify pool already authenticated.
    Verified(VerifiedMessage),
    /// A batch of client requests; the receiving host runs the edge
    /// verification stage (signature check and strip, in signed-client mode)
    /// before the transactions reach the replica's mempool.
    Client(Vec<ClientRequest>),
    /// Fault injection: the replica stops processing everything (messages,
    /// timers, client traffic) until a `Recover` arrives.
    Crash,
    /// Fault injection: the replica resumes. With `durable` it restarts from
    /// its durable segment log (optionally after `storage_fault` mangled the
    /// log at the crash point); with `amnesia` it restarts from its latest
    /// volatile checkpoint and state-transfers the lost history back;
    /// otherwise it simply resumes from its pre-crash in-memory state.
    Recover {
        amnesia: bool,
        durable: bool,
        storage_fault: Option<StorageFault>,
    },
    Shutdown,
}

/// The threaded backend's [`Transport`]: messages go straight into the peer
/// channels; timers and delayed proposals are kept thread-local and fired by
/// the replica thread's own loop when the wall clock passes their deadline.
struct ThreadTransport {
    id: NodeId,
    peers: Vec<Sender<ThreadEvent>>,
    /// When present, outbound messages are routed through the cluster's
    /// verification pool instead of straight into the peer channels.
    verify: Option<VerifyHandle>,
    /// Armed view timers: `(view, absolute deadline)`.
    timers: Vec<(View, SimTime)>,
    /// Scheduled delayed proposals: `(view, absolute time)`.
    proposals: Vec<(View, SimTime)>,
    /// Armed sync timers (state-transfer debounce/retry deadlines).
    sync_timers: Vec<SimTime>,
}

impl ThreadTransport {
    fn new(id: NodeId, peers: Vec<Sender<ThreadEvent>>, verify: Option<VerifyHandle>) -> Self {
        Self {
            id,
            peers,
            verify,
            timers: Vec::new(),
            proposals: Vec::new(),
            sync_timers: Vec::new(),
        }
    }

    /// Earliest pending deadline among timers, delayed proposals and sync
    /// timers.
    fn next_deadline(&self) -> Option<SimTime> {
        let timer = self.timers.iter().map(|&(_, d)| d).min();
        let proposal = self.proposals.iter().map(|&(_, d)| d).min();
        let sync = self.sync_timers.iter().copied().min();
        [timer, proposal, sync].into_iter().flatten().min()
    }

    /// Removes and returns one timer whose deadline has passed.
    fn due_timer(&mut self, now: SimTime) -> Option<View> {
        let index = self.timers.iter().position(|&(_, d)| d <= now)?;
        Some(self.timers.swap_remove(index).0)
    }

    /// Removes and returns one delayed proposal whose time has come.
    fn due_proposal(&mut self, now: SimTime) -> Option<View> {
        let index = self.proposals.iter().position(|&(_, d)| d <= now)?;
        Some(self.proposals.swap_remove(index).0)
    }

    /// Removes one sync timer whose deadline has passed, if any.
    fn due_sync_timer(&mut self, now: SimTime) -> bool {
        match self.sync_timers.iter().position(|&d| d <= now) {
            Some(index) => {
                self.sync_timers.swap_remove(index);
                true
            }
            None => false,
        }
    }

    /// Drops timers and proposals for views the replica has already left, so
    /// the pending lists stay bounded over long runs. Sync timers are
    /// view-less and self-consume on firing, so they are left alone.
    fn prune_stale(&mut self, current_view: View) {
        self.timers.retain(|&(view, _)| view >= current_view);
        self.proposals.retain(|&(view, _)| view >= current_view);
    }

    /// Drops every armed deadline — an amnesia restart invalidates timers
    /// armed for pre-crash views.
    fn clear_deadlines(&mut self) {
        self.timers.clear();
        self.proposals.clear();
        self.sync_timers.clear();
    }
}

impl Transport for ThreadTransport {
    fn unicast(&mut self, to: NodeId, message: Message) {
        if let Some(verify) = &self.verify {
            verify.submit_unicast(self.id, to, message);
        } else if let Some(sender) = self.peers.get(to.index()) {
            let _ = sender.send(ThreadEvent::Inbound {
                from: self.id,
                message: SharedMessage::new(message),
            });
        }
    }

    fn broadcast(&mut self, message: Message) {
        if let Some(verify) = &self.verify {
            // One submission: the pool verifies once and fans the proof token
            // out to every peer, instead of n - 1 redundant verifications.
            verify.submit_broadcast(self.id, message);
            return;
        }
        // Wrap the envelope once; each peer channel gets a pointer bump.
        let message = SharedMessage::new(message);
        for (index, sender) in self.peers.iter().enumerate() {
            if index != self.id.index() {
                let _ = sender.send(ThreadEvent::Inbound {
                    from: self.id,
                    message: message.clone(),
                });
            }
        }
    }

    fn arm_timer(&mut self, view: View, deadline: SimTime) {
        self.timers.push((view, deadline));
    }

    fn schedule_proposal(&mut self, view: View, at: SimTime) {
        self.proposals.push((view, at));
    }

    fn arm_sync_timer(&mut self, deadline: SimTime) {
        self.sync_timers.push(deadline);
    }
}

/// Verification workers a cluster spawns unless told otherwise. Two workers
/// keep signature checking off the consensus threads while staying light
/// enough for test machines; see `spawn_with_verify_workers` to tune.
pub const DEFAULT_VERIFY_WORKERS: usize = 2;

/// A running in-process cluster of replica threads.
pub struct ThreadedCluster {
    config: Config,
    senders: Vec<Sender<ThreadEvent>>,
    handles: Vec<JoinHandle<NodeHost>>,
    verify_pool: Option<VerifyPool>,
    started_at: Instant,
    committed_txs: Arc<Mutex<u64>>,
    /// Root of the per-node durable-log directories; removed at shutdown.
    /// `None` unless [`Config::durable_log`] is set.
    storage_dir: Option<PathBuf>,
}

impl ThreadedCluster {
    /// Spawns `config.nodes` replica threads running `protocol`, with the
    /// default verification pool ([`DEFAULT_VERIFY_WORKERS`] crypto workers).
    pub fn spawn(config: Config, protocol: ProtocolKind) -> Self {
        Self::spawn_with_verify_workers(config, protocol, DEFAULT_VERIFY_WORKERS)
    }

    /// Spawns the cluster with an explicit verification-pool size. Zero
    /// workers selects inline verification: each replica thread authenticates
    /// its own inbound messages on the consensus thread (the configuration
    /// the `verify_pool_throughput` micro-bench compares against).
    pub fn spawn_with_verify_workers(
        config: Config,
        protocol: ProtocolKind,
        verify_workers: usize,
    ) -> Self {
        let nodes = config.nodes;
        let mut senders: Vec<Sender<ThreadEvent>> = Vec::with_capacity(nodes);
        let mut receivers: Vec<Receiver<ThreadEvent>> = Vec::with_capacity(nodes);
        for _ in 0..nodes {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let verify_pool = (verify_workers > 0).then(|| {
            let peers = senders.clone();
            VerifyPool::new(nodes, verify_workers, move |to, verified| {
                if let Some(sender) = peers.get(to.index()) {
                    let _ = sender.send(ThreadEvent::Verified(verified));
                }
            })
        });
        let started_at = Instant::now();
        let committed_txs = Arc::new(Mutex::new(0u64));
        // Durable-log mode: each replica gets its own directory of real
        // segment files under a unique per-cluster root, mirroring a process
        // with a local disk. Removed at shutdown.
        let storage_dir = config.durable_log.then(|| {
            let seq = CLUSTER_SEQ.fetch_add(1, Ordering::Relaxed);
            std::env::temp_dir().join(format!("bamboo-cluster-{}-{seq}", std::process::id()))
        });
        let mut handles = Vec::with_capacity(nodes);
        for (index, receiver) in receivers.into_iter().enumerate() {
            let id = NodeId(index as u64);
            let config = config.clone();
            let peers = senders.clone();
            let committed = Arc::clone(&committed_txs);
            let verify = verify_pool.as_ref().map(VerifyPool::handle);
            let node_dir = storage_dir
                .as_ref()
                .map(|dir| dir.join(format!("node-{index}")));
            let handle = std::thread::spawn(move || {
                run_replica_thread(
                    id, protocol, config, receiver, peers, verify, started_at, committed, node_dir,
                )
            });
            handles.push(handle);
        }
        Self {
            config,
            senders,
            handles,
            verify_pool,
            started_at,
            committed_txs,
            storage_dir,
        }
    }

    /// Submits a batch of unsigned client transactions to a replica. In
    /// signed-client mode ([`Config::signed_requests`]) these are rejected at
    /// the replica edge — use [`ThreadedCluster::submit_requests`] with
    /// properly signed requests instead.
    pub fn submit(&self, replica: NodeId, txs: Vec<Transaction>) {
        self.submit_requests(
            replica,
            txs.into_iter().map(ClientRequest::unsigned).collect(),
        );
    }

    /// Submits a batch of client requests (signed or not) to a replica.
    pub fn submit_requests(&self, replica: NodeId, requests: Vec<ClientRequest>) {
        if let Some(sender) = self.senders.get(replica.index()) {
            let _ = sender.send(ThreadEvent::Client(requests));
        }
    }

    /// Crashes a replica: it stops processing messages, timers and client
    /// traffic until [`ThreadedCluster::recover`] is called for it.
    pub fn crash(&self, replica: NodeId) {
        if let Some(sender) = self.senders.get(replica.index()) {
            let _ = sender.send(ThreadEvent::Crash);
        }
    }

    /// Recovers a crashed replica. With `amnesia` the replica discards its
    /// in-memory state, restarts from its latest checkpoint and
    /// state-transfers the missing history from its peers; without, it
    /// resumes from the state it crashed with.
    pub fn recover(&self, replica: NodeId, amnesia: bool) {
        if let Some(sender) = self.senders.get(replica.index()) {
            let _ = sender.send(ThreadEvent::Recover {
                amnesia,
                durable: false,
                storage_fault: None,
            });
        }
    }

    /// Recovers a crashed replica from its own durable segment log: the
    /// optional crash-point `storage_fault` mangles the log first, then the
    /// replica replays its persisted checkpoint image plus surviving records
    /// and state-transfers only the tail. Requires the cluster to run with
    /// [`Config::durable_log`]; without it, the restart degrades to amnesia.
    pub fn recover_durable(&self, replica: NodeId, storage_fault: Option<StorageFault>) {
        if let Some(sender) = self.senders.get(replica.index()) {
            let _ = sender.send(ThreadEvent::Recover {
                amnesia: false,
                durable: true,
                storage_fault,
            });
        }
    }

    /// Convenience: submits `count` transactions of `payload` bytes
    /// round-robin across all replicas. In signed-client mode each request is
    /// signed with the issuing client's derived key, so the batches pass the
    /// edge check.
    pub fn submit_round_robin(&self, count: u64, payload: usize) {
        let now = SimTime(self.started_at.elapsed().as_nanos() as u64);
        let client = NodeId(999);
        let keypair = self
            .config
            .signed_requests
            .then(|| KeyPair::client_from_seed(client.as_u64()));
        for seq in 0..count {
            let replica = NodeId(seq % self.config.nodes as u64);
            let tx = Transaction::new(client, seq, payload, now);
            let request = match &keypair {
                Some(keypair) => ClientRequest::signed(tx, keypair),
                None => ClientRequest::unsigned(tx),
            };
            self.submit_requests(replica, vec![request]);
        }
    }

    /// Committed transactions observed so far (at replica 0).
    pub fn committed_txs(&self) -> u64 {
        *self.committed_txs.lock().expect("counter lock poisoned")
    }

    /// Lets the cluster run for `duration` of wall-clock time.
    pub fn run_for(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    /// Runs until replica 0 has observed at least `min_txs` committed
    /// transactions or `max_wait` elapses; returns whether the target was
    /// reached. Prefer this over a fixed [`ThreadedCluster::run_for`] in
    /// tests — wall-clock progress depends on scheduler pressure, so a fixed
    /// window flakes on loaded machines while a progress poll does not.
    pub fn run_until_committed(&self, min_txs: u64, max_wait: Duration) -> bool {
        let deadline = Instant::now() + max_wait;
        loop {
            if self.committed_txs() >= min_txs {
                return true;
            }
            if Instant::now() >= deadline {
                return self.committed_txs() >= min_txs;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stops every replica thread (and the verify pool) and returns the
    /// final report.
    pub fn shutdown(self) -> ClusterReport {
        self.shutdown_with_hosts().0
    }

    /// Like [`ThreadedCluster::shutdown`], but also hands back the final
    /// [`NodeHost`]s so tests and experiments can inspect per-replica state —
    /// ledgers, chain fingerprints, recovery statistics — beyond what the
    /// summary report carries.
    pub fn shutdown_with_hosts(self) -> (ClusterReport, Vec<NodeHost>) {
        for sender in &self.senders {
            let _ = sender.send(ThreadEvent::Shutdown);
        }
        let hosts: Vec<NodeHost> = self
            .handles
            .into_iter()
            .map(|h| h.join().expect("replica thread panicked"))
            .collect();
        // Replica threads are gone, so every transport-held pool handle is
        // dropped and the workers can drain and exit; the rejection total is
        // sampled by `shutdown` only after the drain, so forgeries still
        // queued in the pool when the replicas stopped are counted too.
        let mut auth_rejections: u64 = hosts.iter().map(NodeHost::auth_rejections).sum();
        let client_auth_rejections: u64 = hosts.iter().map(NodeHost::client_auth_rejections).sum();
        if let Some(pool) = self.verify_pool {
            let (_accepted, rejected) = pool.shutdown();
            auth_rejections += rejected;
        }
        let replicas: Vec<&crate::Replica> = hosts.iter().map(NodeHost::replica).collect();
        let committed_blocks: Vec<usize> = replicas.iter().map(|r| r.ledger().len()).collect();
        let max_view = replicas
            .iter()
            .map(|r| r.current_view().as_u64())
            .max()
            .unwrap_or(0);
        let mut safety_violations: u64 = replicas.iter().map(|r| r.safety_violations()).sum();
        let timeout_view_changes: u64 = replicas.iter().map(|r| r.timeout_view_changes()).sum();
        let honest: Vec<&&crate::Replica> = replicas
            .iter()
            .filter(|r| !self.config.is_byzantine(r.id()))
            .collect();
        let mut consistent = true;
        for pair in honest.windows(2) {
            if !pair[0].ledger().consistent_with(pair[1].ledger()) {
                consistent = false;
                safety_violations += 1;
            }
        }
        let report = ClusterReport {
            committed_blocks,
            committed_txs: *self.committed_txs.lock().expect("counter lock poisoned"),
            max_view,
            ledgers_consistent: consistent,
            safety_violations,
            timeout_view_changes,
            auth_rejections,
            client_auth_rejections,
        };
        if let Some(dir) = &self.storage_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
        (report, hosts)
    }
}

/// Upper bound on how long a replica thread sleeps when it has nothing armed;
/// keeps shutdown latency bounded even if no timer is pending.
const IDLE_WAIT: Duration = Duration::from_millis(20);

#[allow(clippy::too_many_arguments)]
fn run_replica_thread(
    id: NodeId,
    protocol: ProtocolKind,
    config: Config,
    receiver: Receiver<ThreadEvent>,
    peers: Vec<Sender<ThreadEvent>>,
    verify: Option<VerifyHandle>,
    started_at: Instant,
    committed_txs: Arc<Mutex<u64>>,
    storage_dir: Option<PathBuf>,
) -> NodeHost {
    let (segment_bytes, fsync_interval) = (config.segment_bytes, config.fsync_interval);
    let mut host = NodeHost::new(id, protocol, config, ReplicaOptions::default());
    if let Some(dir) = storage_dir {
        // Swap the default in-memory log for real files in this node's own
        // directory; an existing directory (a restarted cluster) resumes at
        // its durable append position.
        let log = SegmentLog::on_disk(&dir, segment_bytes, fsync_interval)
            .expect("create durable-log directory");
        host.replica_mut().set_storage(log);
    }
    let mut transport = ThreadTransport::new(id, peers, verify);
    let now = || SimTime(started_at.elapsed().as_nanos() as u64);

    // Replica 0 is the designated observer for the cluster-wide commit
    // counter, mirroring the simulator's single-observer accounting.
    let account = |report: &StepReport| {
        if id == NodeId(0) {
            let newly: u64 = report
                .committed
                .iter()
                .map(|b| b.payload.len() as u64)
                .sum();
            if newly > 0 {
                *committed_txs.lock().expect("counter lock poisoned") += newly;
            }
        }
    };

    let report = host.start(now(), &mut transport);
    account(&report);
    // While crashed, the replica processes nothing: inbound traffic is
    // dropped on the floor and armed deadlines do not fire. Only `Recover`
    // and `Shutdown` are honoured.
    let mut crashed = false;

    loop {
        let current = now();

        if !crashed {
            // Fire one expired view timer: this is what keeps a live cluster
            // moving when a leader is silent — no message traffic is needed
            // for the view change to happen.
            if let Some(view) = transport.due_timer(current) {
                let report =
                    host.handle(ReplicaEvent::TimerFired { view }, current, &mut transport);
                account(&report);
                transport.prune_stale(host.replica().current_view());
                continue;
            }

            // Fire one due delayed proposal (the non-responsive Fig. 15 mode).
            if let Some(view) = transport.due_proposal(current) {
                let report =
                    host.handle(ReplicaEvent::ProposeNow { view }, current, &mut transport);
                account(&report);
                continue;
            }

            // Fire one due sync timer (state-transfer debounce/retry).
            if transport.due_sync_timer(current) {
                let report = host.handle(ReplicaEvent::SyncTimer, current, &mut transport);
                account(&report);
                continue;
            }
        }

        // Block on the channel, but never sleep past the next armed deadline.
        let wait = match transport.next_deadline() {
            Some(deadline) if !crashed => {
                Duration::from_nanos(deadline.as_nanos().saturating_sub(current.as_nanos()))
                    .min(IDLE_WAIT)
            }
            _ => IDLE_WAIT,
        };
        match receiver.recv_timeout(wait) {
            Ok(ThreadEvent::Shutdown) => break,
            Ok(ThreadEvent::Crash) => {
                crashed = true;
            }
            Ok(ThreadEvent::Recover {
                amnesia,
                durable,
                storage_fault,
            }) => {
                if crashed {
                    crashed = false;
                    if durable {
                        // The process comes back with only what its segment
                        // log and persisted checkpoint survived (less whatever
                        // the crash-point fault destroyed); pre-crash
                        // deadlines refer to views that no longer exist.
                        transport.clear_deadlines();
                        let report = host.restart_durable(now(), storage_fault, &mut transport);
                        account(&report);
                    } else if amnesia {
                        // The process comes back with nothing but its durable
                        // checkpoint; pre-crash deadlines refer to views that
                        // no longer exist for it.
                        transport.clear_deadlines();
                        let report = host.restart_with_amnesia(now(), &mut transport);
                        account(&report);
                    }
                }
            }
            Ok(_) if crashed => {
                // A crashed replica hears nothing.
            }
            Ok(ThreadEvent::Inbound { from, message }) => {
                // Inline-verification mode: `handle_shared` authenticates
                // before the replica sees the message; the last recipient of
                // a broadcast recovers the owned envelope without a copy.
                let report = host.handle_shared(from, message, now(), &mut transport);
                account(&report);
                transport.prune_stale(host.replica().current_view());
            }
            Ok(ThreadEvent::Verified(verified)) => {
                // The verify pool already authenticated this message off the
                // consensus thread; the proof token skips the inline check.
                let report = host.handle_verified(verified, now(), &mut transport);
                account(&report);
                transport.prune_stale(host.replica().current_view());
            }
            Ok(ThreadEvent::Client(requests)) => {
                // Same edge-verification stage as the simulator: forged
                // requests are dropped and counted, honest ones admitted.
                let report = host.handle_client_batch(requests, now(), &mut transport);
                account(&report);
            }
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    host
}

#[cfg(test)]
mod tests {
    use super::*;
    use bamboo_types::{ByzantineStrategy, SimDuration};

    #[test]
    fn threaded_cluster_commits_and_stays_consistent() {
        let config = Config::builder()
            .nodes(4)
            .block_size(20)
            .timeout(SimDuration::from_millis(50))
            .build()
            .unwrap();
        let cluster = ThreadedCluster::spawn(config, ProtocolKind::HotStuff);
        cluster.submit_round_robin(400, 16);
        // Poll for progress instead of sleeping a fixed window: wall-clock
        // progress depends on scheduler pressure, and a fixed sleep flakes on
        // loaded CI runners.
        assert!(
            cluster.run_until_committed(40, Duration::from_secs(20)),
            "cluster committed {} txs before the deadline",
            cluster.committed_txs()
        );
        let report = cluster.shutdown();
        assert!(report.max_view > 2, "views advanced: {}", report.max_view);
        assert!(
            report.committed_blocks.iter().any(|&c| c > 0),
            "some replica committed blocks: {:?}",
            report.committed_blocks
        );
        assert!(report.ledgers_consistent);
        assert_eq!(report.safety_violations, 0);
    }

    #[test]
    fn silenced_leader_cannot_hang_the_cluster() {
        // Node 0 runs the silence strategy: it never proposes. Without real
        // view timers the cluster would stall forever in every view node 0
        // leads; with them, replicas time out and keep committing.
        let mut config = Config::builder()
            .nodes(4)
            .block_size(20)
            .timeout(SimDuration::from_millis(30))
            .build()
            .unwrap();
        config.byzantine_strategy = ByzantineStrategy::Silence;
        config.byz_nodes = 1;
        let cluster = ThreadedCluster::spawn(config, ProtocolKind::HotStuff);
        cluster.submit_round_robin(400, 16);
        // Five committed blocks at replica 0 means the cluster moved past
        // view 4 — node 0's first leadership slot — which under silence is
        // only possible via a timeout-driven view change.
        assert!(
            cluster.run_until_committed(100, Duration::from_secs(20)),
            "cluster committed {} txs before the deadline",
            cluster.committed_txs()
        );
        let report = cluster.shutdown();
        assert!(
            report.timeout_view_changes > 0,
            "view changes must happen via timeouts"
        );
        assert!(
            report.max_view > 4,
            "views must advance past the silent leader: {}",
            report.max_view
        );
        assert!(
            report.committed_blocks.iter().any(|&c| c > 0),
            "cluster must keep committing: {:?}",
            report.committed_blocks
        );
        assert!(report.ledgers_consistent);
        assert_eq!(report.safety_violations, 0);
    }
}

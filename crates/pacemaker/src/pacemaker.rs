//! The view-synchronisation state machine.

use std::collections::BTreeMap;

use bamboo_crypto::KeyPair;
use bamboo_types::{
    ids::quorum_threshold, NodeId, QuorumCert, SimDuration, SimTime, TimeoutCert, TimeoutVote, View,
};

/// Actions the pacemaker asks the replica to perform.
#[derive(Clone, Debug, PartialEq)]
pub enum PacemakerAction {
    /// Broadcast this timeout vote to every replica.
    BroadcastTimeout(TimeoutVote),
    /// A timeout certificate formed; enter `new_view` and forward the TC to
    /// that view's leader.
    NewView {
        /// The view to enter.
        new_view: View,
        /// The TC that justifies entering it (None when the view advanced
        /// because of a QC rather than a TC).
        tc: Option<TimeoutCert>,
    },
    /// Re-arm the local view timer: schedule a timer event for `deadline`.
    ScheduleTimer {
        /// The view the timer guards.
        view: View,
        /// Absolute simulated time at which it fires.
        deadline: SimTime,
    },
}

/// Per-replica pacemaker.
///
/// Drives view advancement from three inputs: local timer expirations,
/// received timeout votes, and observed QCs/TCs. All outputs are returned as
/// [`PacemakerAction`]s for the replica to execute.
#[derive(Debug)]
pub struct Pacemaker {
    node: NodeId,
    nodes: usize,
    timeout: SimDuration,
    current_view: View,
    /// Highest view for which we already broadcast a timeout vote.
    last_timeout_broadcast: Option<View>,
    /// Timeout votes collected per view (pruned once the view is passed).
    timeout_votes: BTreeMap<View, Vec<TimeoutVote>>,
    /// Views for which a TC was already emitted (to avoid duplicates).
    tc_emitted: BTreeMap<View, bool>,
    /// Number of view changes caused by timeouts (for metrics).
    timeout_view_changes: u64,
}

impl Pacemaker {
    /// Creates a pacemaker for `node` in a system of `nodes` replicas with the
    /// given view timeout. The replica starts in view 1 (view 0 is genesis).
    pub fn new(node: NodeId, nodes: usize, timeout: SimDuration) -> Self {
        Self {
            node,
            nodes,
            timeout,
            current_view: View(1),
            last_timeout_broadcast: None,
            timeout_votes: BTreeMap::new(),
            tc_emitted: BTreeMap::new(),
            timeout_view_changes: 0,
        }
    }

    /// The replica's current view.
    pub fn current_view(&self) -> View {
        self.current_view
    }

    /// The configured view timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Changes the timeout at run time (used by the responsiveness experiment
    /// to compare 10 ms and 100 ms settings).
    pub fn set_timeout(&mut self, timeout: SimDuration) {
        self.timeout = timeout;
    }

    /// Number of view changes that were caused by timeouts rather than QCs.
    pub fn timeout_view_changes(&self) -> u64 {
        self.timeout_view_changes
    }

    /// Called when the replica enters a view (at start-up and after every view
    /// change): returns the timer-arming action.
    pub fn arm_timer(&self, now: SimTime) -> PacemakerAction {
        PacemakerAction::ScheduleTimer {
            view: self.current_view,
            deadline: now + self.timeout,
        }
    }

    /// Handles a local timer expiration for `view`. If the replica is still in
    /// that view, it gives up and broadcasts a timeout vote carrying its
    /// highest QC; stale timers are ignored.
    pub fn on_timer(
        &mut self,
        view: View,
        high_qc: QuorumCert,
        keypair: &KeyPair,
    ) -> Vec<PacemakerAction> {
        if view != self.current_view {
            return Vec::new();
        }
        if self.last_timeout_broadcast == Some(view) {
            return Vec::new();
        }
        self.last_timeout_broadcast = Some(view);
        let vote = TimeoutVote::new(view, self.node, high_qc, keypair);
        vec![PacemakerAction::BroadcastTimeout(vote)]
    }

    /// Handles a timeout vote received from the network (our own broadcast is
    /// also fed back through this path). When a quorum of timeout votes for
    /// the current (or a later) view accumulates, a TC forms and the replica
    /// advances.
    pub fn on_timeout_vote(&mut self, vote: TimeoutVote, now: SimTime) -> Vec<PacemakerAction> {
        if vote.view < self.current_view {
            return Vec::new();
        }
        let entry = self.timeout_votes.entry(vote.view).or_default();
        if entry.iter().any(|v| v.voter == vote.voter) {
            return Vec::new();
        }
        entry.push(vote.clone());
        if entry.len() >= quorum_threshold(self.nodes)
            && !self.tc_emitted.get(&vote.view).copied().unwrap_or(false)
        {
            self.tc_emitted.insert(vote.view, true);
            let tc = TimeoutCert::from_votes(vote.view, entry);
            self.timeout_view_changes += 1;
            let mut actions = self.enter_view(vote.view.next(), now);
            actions.insert(
                0,
                PacemakerAction::NewView {
                    new_view: vote.view.next(),
                    tc: Some(tc),
                },
            );
            return actions;
        }
        Vec::new()
    }

    /// Handles a timeout certificate received directly (e.g. forwarded by
    /// another replica that formed it first).
    pub fn on_timeout_cert(&mut self, tc: TimeoutCert, now: SimTime) -> Vec<PacemakerAction> {
        if tc.view.next() <= self.current_view {
            return Vec::new();
        }
        self.timeout_view_changes += 1;
        let mut actions = self.enter_view(tc.view.next(), now);
        actions.insert(
            0,
            PacemakerAction::NewView {
                new_view: tc.view.next(),
                tc: Some(tc),
            },
        );
        actions
    }

    /// Handles an observed QC: a QC for view `v` lets the replica advance to
    /// `v + 1` (the happy-path view change).
    pub fn on_qc(&mut self, qc: &QuorumCert, now: SimTime) -> Vec<PacemakerAction> {
        if qc.view.next() <= self.current_view {
            return Vec::new();
        }
        let mut actions = self.enter_view(qc.view.next(), now);
        actions.insert(
            0,
            PacemakerAction::NewView {
                new_view: qc.view.next(),
                tc: None,
            },
        );
        actions
    }

    fn enter_view(&mut self, view: View, now: SimTime) -> Vec<PacemakerAction> {
        debug_assert!(view > self.current_view);
        self.current_view = view;
        // Garbage-collect vote buffers for passed views.
        self.timeout_votes = self.timeout_votes.split_off(&view);
        self.tc_emitted = self.tc_emitted.split_off(&view);
        vec![self.arm_timer(now)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<KeyPair> {
        (0..n).map(KeyPair::from_seed).collect()
    }

    fn make(node: u64, nodes: usize) -> Pacemaker {
        Pacemaker::new(NodeId(node), nodes, SimDuration::from_millis(100))
    }

    #[test]
    fn starts_in_view_one_and_arms_timer() {
        let pm = make(0, 4);
        assert_eq!(pm.current_view(), View(1));
        match pm.arm_timer(SimTime(5)) {
            PacemakerAction::ScheduleTimer { view, deadline } => {
                assert_eq!(view, View(1));
                assert_eq!(deadline, SimTime(5) + SimDuration::from_millis(100));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn timer_expiry_broadcasts_timeout_once() {
        let kps = keys(4);
        let mut pm = make(0, 4);
        let actions = pm.on_timer(View(1), QuorumCert::genesis(), &kps[0]);
        assert_eq!(actions.len(), 1);
        assert!(matches!(actions[0], PacemakerAction::BroadcastTimeout(_)));
        // A duplicate timer for the same view does nothing.
        assert!(pm
            .on_timer(View(1), QuorumCert::genesis(), &kps[0])
            .is_empty());
        // A stale timer for an old view does nothing either.
        assert!(pm
            .on_timer(View(0), QuorumCert::genesis(), &kps[0])
            .is_empty());
    }

    #[test]
    fn quorum_of_timeouts_forms_tc_and_advances() {
        let kps = keys(4);
        let mut pm = make(0, 4);
        let now = SimTime(1_000);
        let mut produced_tc = None;
        for i in 0..3u64 {
            let vote =
                TimeoutVote::new(View(1), NodeId(i), QuorumCert::genesis(), &kps[i as usize]);
            let actions = pm.on_timeout_vote(vote, now);
            if i < 2 {
                assert!(actions.is_empty(), "no TC before quorum");
            } else {
                assert_eq!(actions.len(), 2);
                match &actions[0] {
                    PacemakerAction::NewView { new_view, tc } => {
                        assert_eq!(*new_view, View(2));
                        produced_tc = tc.clone();
                    }
                    other => panic!("unexpected {other:?}"),
                }
                assert!(matches!(actions[1], PacemakerAction::ScheduleTimer { .. }));
            }
        }
        let tc = produced_tc.expect("tc formed");
        assert_eq!(tc.view, View(1));
        assert_eq!(tc.signer_count(), 3);
        assert_eq!(pm.current_view(), View(2));
        assert_eq!(pm.timeout_view_changes(), 1);
    }

    #[test]
    fn duplicate_timeout_votes_are_ignored() {
        let kps = keys(4);
        let mut pm = make(0, 4);
        let vote = TimeoutVote::new(View(1), NodeId(1), QuorumCert::genesis(), &kps[1]);
        assert!(pm.on_timeout_vote(vote.clone(), SimTime(0)).is_empty());
        assert!(pm.on_timeout_vote(vote.clone(), SimTime(0)).is_empty());
        assert!(pm.on_timeout_vote(vote, SimTime(0)).is_empty());
        assert_eq!(pm.current_view(), View(1), "one voter cannot force a TC");
    }

    #[test]
    fn qc_advances_view_and_rearms_timer() {
        let mut pm = make(0, 4);
        let qc = QuorumCert {
            block: Default::default(),
            view: View(3),
            signatures: Default::default(),
        };
        let actions = pm.on_qc(&qc, SimTime(10));
        assert_eq!(pm.current_view(), View(4));
        assert!(matches!(
            actions[0],
            PacemakerAction::NewView {
                new_view: View(4),
                tc: None
            }
        ));
        // An older QC does nothing.
        let old = QuorumCert {
            block: Default::default(),
            view: View(1),
            signatures: Default::default(),
        };
        assert!(pm.on_qc(&old, SimTime(20)).is_empty());
        assert_eq!(pm.timeout_view_changes(), 0);
    }

    #[test]
    fn forwarded_tc_advances_lagging_replica() {
        let kps = keys(4);
        let mut pm = make(3, 4);
        let votes: Vec<TimeoutVote> = (0..3)
            .map(|i| TimeoutVote::new(View(5), NodeId(i), QuorumCert::genesis(), &kps[i as usize]))
            .collect();
        let tc = TimeoutCert::from_votes(View(5), &votes);
        let actions = pm.on_timeout_cert(tc.clone(), SimTime(0));
        assert_eq!(pm.current_view(), View(6));
        assert!(!actions.is_empty());
        // Re-delivering the same TC is a no-op.
        assert!(pm.on_timeout_cert(tc, SimTime(0)).is_empty());
    }

    #[test]
    fn stale_timeout_votes_for_past_views_are_dropped() {
        let kps = keys(4);
        let mut pm = make(0, 4);
        let qc = QuorumCert {
            block: Default::default(),
            view: View(9),
            signatures: Default::default(),
        };
        pm.on_qc(&qc, SimTime(0));
        assert_eq!(pm.current_view(), View(10));
        let vote = TimeoutVote::new(View(3), NodeId(1), QuorumCert::genesis(), &kps[1]);
        assert!(pm.on_timeout_vote(vote, SimTime(0)).is_empty());
    }

    #[test]
    fn set_timeout_affects_future_timers() {
        let mut pm = make(0, 4);
        pm.set_timeout(SimDuration::from_millis(10));
        match pm.arm_timer(SimTime::ZERO) {
            PacemakerAction::ScheduleTimer { deadline, .. } => {
                assert_eq!(deadline, SimTime::ZERO + SimDuration::from_millis(10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}

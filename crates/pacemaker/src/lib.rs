//! Pacemaker — the liveness module of the Bamboo architecture (§III-B).
//!
//! The pacemaker advances views and keeps "a sufficient number of honest
//! replicas in the same view for a sufficiently long period of time". The
//! implementation follows the LibraBFT-style design the paper adopts:
//!
//! * every replica arms a timer when it enters a view,
//! * if the timer fires before progress is made, the replica broadcasts a
//!   `⟨TIMEOUT, v⟩` vote carrying its highest QC,
//! * on collecting a quorum (`2f + 1`) of timeout votes for view `v` a
//!   [`bamboo_types::TimeoutCert`] is formed, the replica advances to `v + 1`
//!   and forwards the TC to the new leader,
//! * receiving a QC for view `v` also advances the replica to `v + 1`.
//!
//! The pacemaker is purely reactive: it never performs I/O and never reads a
//! clock. The runner owns time and feeds timer expirations in; the pacemaker
//! answers with [`PacemakerAction`]s.
//!
//! Leader election ([`LeaderElection`]) also lives here because it is a pure
//! function of the view number.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod election;
pub mod pacemaker;

pub use election::LeaderElection;
pub use pacemaker::{Pacemaker, PacemakerAction};

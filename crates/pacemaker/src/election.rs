//! Leader election policies.

use bamboo_crypto::Digest;
use bamboo_types::config::LeaderPolicy;
use bamboo_types::{NodeId, View};

/// Maps views to leaders.
///
/// # Example
///
/// ```
/// use bamboo_pacemaker::LeaderElection;
/// use bamboo_types::config::LeaderPolicy;
/// use bamboo_types::{NodeId, View};
///
/// let election = LeaderElection::new(4, LeaderPolicy::RoundRobin);
/// assert_eq!(election.leader_of(View(1)), NodeId(1));
/// assert_eq!(election.leader_of(View(5)), NodeId(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeaderElection {
    nodes: usize,
    policy: LeaderPolicy,
}

impl LeaderElection {
    /// Creates an election over `nodes` replicas with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: usize, policy: LeaderPolicy) -> Self {
        assert!(nodes > 0, "cannot elect a leader among zero nodes");
        Self { nodes, policy }
    }

    /// Number of participating replicas.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The leader of `view`.
    pub fn leader_of(&self, view: View) -> NodeId {
        match self.policy {
            LeaderPolicy::RoundRobin => NodeId(view.as_u64() % self.nodes as u64),
            LeaderPolicy::Static(leader) => leader,
            LeaderPolicy::Hashed => {
                let digest = Digest::of(&view.as_u64().to_be_bytes());
                let mut value = [0u8; 8];
                value.copy_from_slice(&digest.as_bytes()[..8]);
                NodeId(u64::from_be_bytes(value) % self.nodes as u64)
            }
        }
    }

    /// Returns true if `node` leads `view`.
    pub fn is_leader(&self, node: NodeId, view: View) -> bool {
        self.leader_of(view) == node
    }

    /// The next view after `view` (strictly greater) in which `node` leads;
    /// useful for workload placement in tests and benches.
    pub fn next_leadership(&self, node: NodeId, view: View) -> View {
        let mut candidate = view.next();
        // For round-robin this terminates within `nodes` steps; for hashed the
        // expected number of steps is `nodes`, and we bound the scan.
        for _ in 0..(self.nodes * 64).max(1024) {
            if self.is_leader(node, candidate) {
                return candidate;
            }
            candidate = candidate.next();
        }
        candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_through_all_nodes() {
        let election = LeaderElection::new(4, LeaderPolicy::RoundRobin);
        let leaders: Vec<NodeId> = (0..8).map(|v| election.leader_of(View(v))).collect();
        assert_eq!(
            leaders,
            vec![
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3),
                NodeId(0),
                NodeId(1),
                NodeId(2),
                NodeId(3)
            ]
        );
    }

    #[test]
    fn static_leader_never_changes() {
        let election = LeaderElection::new(4, LeaderPolicy::Static(NodeId(2)));
        for v in 0..100 {
            assert_eq!(election.leader_of(View(v)), NodeId(2));
        }
    }

    #[test]
    fn hashed_policy_is_deterministic_and_in_range() {
        let election = LeaderElection::new(7, LeaderPolicy::Hashed);
        for v in 0..200 {
            let a = election.leader_of(View(v));
            let b = election.leader_of(View(v));
            assert_eq!(a, b);
            assert!(a.index() < 7);
        }
        // All nodes should lead at least once over a long horizon.
        let mut seen = [false; 7];
        for v in 0..2_000 {
            seen[election.leader_of(View(v)).index()] = true;
        }
        assert!(seen.iter().all(|s| *s), "hashed election covers all nodes");
    }

    #[test]
    fn next_leadership_finds_future_view() {
        let election = LeaderElection::new(4, LeaderPolicy::RoundRobin);
        assert_eq!(election.next_leadership(NodeId(2), View(0)), View(2));
        assert_eq!(election.next_leadership(NodeId(2), View(2)), View(6));
    }

    #[test]
    #[should_panic(expected = "zero nodes")]
    fn zero_nodes_panics() {
        let _ = LeaderElection::new(0, LeaderPolicy::RoundRobin);
    }
}

//! Network latency model.
//!
//! One-way message delay from `from` to `to` is sampled as
//!
//! ```text
//! delay = max(link_floor, Normal(link.mean, link.std)) + extra ± jitter + fluctuation(t) + slow(node)
//! ```
//!
//! with `link_floor = max(floor, mean/4, mean − 3σ)` per link class — a
//! statistically invisible clamp (≤0.13% of draws) that gives every class a
//! positive minimum delay, from which [`LatencyModel::lookahead`] derives the
//! parallel engine's conservative synchronization window.
//!
//! where `link` is the per-pair delay distribution resolved by the
//! [`Topology`] — regions with intra/inter-region distributions and exact
//! (possibly asymmetric) per-link overrides. A [`Topology::uniform`]
//! topology reduces to the paper's assumption that the RTT between any two
//! nodes follows one normal distribution (§V-A2) and consumes the RNG
//! identically to the pre-topology scalar model. On top of the base draw sit
//! the Table-I `delay` knob, the run-time "slow" command, and the network
//! fluctuation window used in the responsiveness experiment (Fig. 15).
//! Partitions — pairwise or group-based — drop messages entirely.

use bamboo_types::{NodeId, SimDuration, SimTime};

use crate::rng::SimRng;
use crate::topology::{DelayDist, Topology};

/// A time window during which every link experiences additional, uniformly
/// distributed delay in `[min_extra, max_extra]` — the paper's "network
/// fluctuation" injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FluctuationWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Minimum extra one-way delay during the window.
    pub min_extra: SimDuration,
    /// Maximum extra one-way delay during the window.
    pub max_extra: SimDuration,
}

impl FluctuationWindow {
    /// Returns true if `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// A link-level fault: either a partition (messages dropped) or a slow link
/// (extra delay), active during a time window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFault {
    /// Drop every message from `from` to `to` during the window.
    Partition {
        /// Sender side of the severed link (`None` = any sender).
        from: Option<NodeId>,
        /// Receiver side of the severed link (`None` = any receiver).
        to: Option<NodeId>,
        /// Window start.
        start: SimTime,
        /// Window end.
        end: SimTime,
    },
    /// Add a fixed extra delay to every message sent by `node` during the
    /// window (the run-time "slow" command).
    SlowNode {
        /// The slowed node.
        node: NodeId,
        /// Extra one-way delay.
        extra: SimDuration,
        /// Window start.
        start: SimTime,
        /// Window end.
        end: SimTime,
    },
    /// Sever the cluster into two groups during the window: every message
    /// whose endpoints fall on opposite sides of `members` is dropped, in
    /// both directions. One fault models a whole group partition — the
    /// scenario engine's oscillating-partition schedule compiles into a list
    /// of these, one per oscillation period.
    ///
    /// `members` is a bitmask over node ids; only replicas with id < 64 can
    /// be partition members (the simulated client, `NodeId(u64::MAX)`, is
    /// never cut off, and clusters larger than 64 nodes need pairwise
    /// [`LinkFault::Partition`] entries instead).
    GroupPartition {
        /// Bitmask of node ids forming one side of the partition.
        members: u64,
        /// Window start.
        start: SimTime,
        /// Window end.
        end: SimTime,
    },
}

impl LinkFault {
    /// Builds the membership bitmask for [`LinkFault::GroupPartition`] from
    /// a list of node ids.
    ///
    /// # Panics
    ///
    /// Panics if a node id is 64 or larger — group partitions are
    /// mask-based and cover the first 64 replicas only.
    pub fn group_mask(nodes: impl IntoIterator<Item = u64>) -> u64 {
        let mut mask = 0u64;
        for node in nodes {
            assert!(node < 64, "group partitions support node ids < 64");
            mask |= 1 << node;
        }
        mask
    }
}

/// Samples one-way network delays and applies injected faults.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    topology: Topology,
    extra: SimDuration,
    extra_jitter: SimDuration,
    floor: SimDuration,
    fluctuations: Vec<FluctuationWindow>,
    faults: Vec<LinkFault>,
}

impl LatencyModel {
    /// Creates a homogeneous model: every link draws from one normal
    /// distribution (the paper's §V-A2 network).
    pub fn new(mean: SimDuration, std: SimDuration) -> Self {
        Self::with_topology(Topology::uniform(mean, std))
    }

    /// Creates a model whose per-link base distributions come from a
    /// [`Topology`].
    pub fn with_topology(topology: Topology) -> Self {
        Self {
            topology,
            extra: SimDuration::ZERO,
            extra_jitter: SimDuration::ZERO,
            floor: SimDuration::from_micros(1),
            fluctuations: Vec::new(),
            faults: Vec::new(),
        }
    }

    /// Adds the Table-I style constant extra delay with ± jitter.
    pub fn with_extra_delay(mut self, extra: SimDuration, jitter: SimDuration) -> Self {
        self.extra = extra;
        self.extra_jitter = jitter;
        self
    }

    /// Sets the minimum possible one-way delay.
    pub fn with_floor(mut self, floor: SimDuration) -> Self {
        self.floor = floor;
        self
    }

    /// Registers a network-fluctuation window.
    pub fn add_fluctuation(&mut self, window: FluctuationWindow) {
        self.fluctuations.push(window);
    }

    /// Registers a link fault (partition or slow node).
    pub fn add_fault(&mut self, fault: LinkFault) {
        self.faults.push(fault);
    }

    /// The mean one-way delay of the topology's default link class.
    pub fn mean(&self) -> SimDuration {
        self.topology.default_dist().mean
    }

    /// The per-link topology the base delays are drawn from.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The hard minimum of one link class's base propagation delay: the
    /// model floor, a quarter of the class mean, or `mean − 3σ`, whichever
    /// is largest. The 3σ clamp trims ~0.13% of normal draws — statistically
    /// invisible — while giving the parallel engine a per-class lower bound
    /// that scales with the link instead of the global 1 µs floor.
    fn link_floor(&self, dist: DelayDist) -> SimDuration {
        let mean = dist.mean.as_nanos();
        let three_sigma = mean.saturating_sub(3 * dist.std.as_nanos());
        SimDuration::from_nanos(self.floor.as_nanos().max(mean / 4).max(three_sigma))
    }

    /// A conservative lower bound on the one-way delay of **every**
    /// replica-to-replica message the model can produce: the minimum over
    /// all link classes of that class's floor (`max(model floor, mean/4,
    /// mean − 3σ)` — see `link_floor`), plus the
    /// smallest possible contribution of the constant extra delay
    /// (`max(0, extra − jitter)`). Fluctuation windows and slow-node faults
    /// only ever *add* delay, so they never shrink the bound.
    ///
    /// This is the parallel engine's lookahead: a message sent at time `t`
    /// cannot be delivered to another replica before `t + lookahead()`, so
    /// shards advancing in lock-step windows of this width never miss a
    /// cross-shard delivery.
    pub fn lookahead(&self) -> SimDuration {
        let extra_min = SimDuration::from_nanos(
            self.extra
                .as_nanos()
                .saturating_sub(self.extra_jitter.as_nanos()),
        );
        self.topology
            .link_classes()
            .map(|class| self.link_floor(class))
            .min()
            .unwrap_or(self.floor)
            + extra_min
    }

    /// Returns `None` if the message is dropped (partition), otherwise the
    /// sampled one-way delay from `from` to `to` at send time `now`.
    pub fn sample(
        &self,
        rng: &mut SimRng,
        from: NodeId,
        to: NodeId,
        now: SimTime,
    ) -> Option<SimDuration> {
        // Partitions first.
        for fault in &self.faults {
            match fault {
                LinkFault::Partition {
                    from: f,
                    to: t,
                    start,
                    end,
                } => {
                    let from_matches = f.map(|n| n == from).unwrap_or(true);
                    let to_matches = t.map(|n| n == to).unwrap_or(true);
                    if from_matches && to_matches && now >= *start && now < *end {
                        return None;
                    }
                }
                LinkFault::GroupPartition {
                    members,
                    start,
                    end,
                } => {
                    // Only replica-to-replica traffic with representable ids
                    // can cross the cut; clients (NodeId::MAX) never do.
                    if from.0 < 64
                        && to.0 < 64
                        && ((members >> from.0) & 1) != ((members >> to.0) & 1)
                        && now >= *start
                        && now < *end
                    {
                        return None;
                    }
                }
                LinkFault::SlowNode { .. } => {}
            }
        }

        // Base normally distributed propagation delay of this link class,
        // clamped at the per-class floor so the lookahead bound holds.
        let dist = self.topology.dist(from, to);
        let base_ns = rng
            .normal(dist.mean.as_nanos() as f64, dist.std.as_nanos() as f64)
            .max(self.link_floor(dist).as_nanos() as f64);
        let mut total = SimDuration::from_nanos(base_ns as u64);

        // Constant extra delay with uniform jitter in [-jitter, +jitter].
        if !self.extra.is_zero() || !self.extra_jitter.is_zero() {
            let jitter_ns = self.extra_jitter.as_nanos() as i64;
            let offset = if jitter_ns > 0 {
                rng.uniform_range(0, (2 * jitter_ns + 1) as u64) as i64 - jitter_ns
            } else {
                0
            };
            let extra_ns = (self.extra.as_nanos() as i64 + offset).max(0) as u64;
            total += SimDuration::from_nanos(extra_ns);
        }

        // Fluctuation windows.
        for window in &self.fluctuations {
            if window.contains(now) {
                let lo = window.min_extra.as_nanos();
                let hi = window.max_extra.as_nanos().max(lo + 1);
                total += SimDuration::from_nanos(rng.uniform_range(lo, hi));
            }
        }

        // Slow-node faults on the sender.
        for fault in &self.faults {
            if let LinkFault::SlowNode {
                node,
                extra,
                start,
                end,
            } = fault
            {
                if *node == from && now >= *start && now < *end {
                    total += *extra;
                }
            }
        }

        // Local delivery is cheap but not free.
        if from == to {
            return Some(self.floor);
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn base_delay_matches_distribution() {
        let model = LatencyModel::new(ms(5), SimDuration::from_micros(500));
        let mut rng = SimRng::new(1);
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|_| {
                model
                    .sample(&mut rng, NodeId(0), NodeId(1), SimTime::ZERO)
                    .unwrap()
                    .as_millis_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn extra_delay_shifts_the_mean() {
        let model =
            LatencyModel::new(ms(1), SimDuration::from_micros(100)).with_extra_delay(ms(10), ms(2));
        let mut rng = SimRng::new(2);
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|_| {
                model
                    .sample(&mut rng, NodeId(0), NodeId(1), SimTime::ZERO)
                    .unwrap()
                    .as_millis_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 11.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn delay_never_goes_below_floor() {
        let model = LatencyModel::new(SimDuration::from_nanos(10), ms(50))
            .with_floor(SimDuration::from_micros(3));
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let d = model
                .sample(&mut rng, NodeId(0), NodeId(1), SimTime::ZERO)
                .unwrap();
            assert!(d >= SimDuration::from_micros(3));
        }
    }

    #[test]
    fn fluctuation_applies_only_inside_window() {
        let mut model = LatencyModel::new(ms(1), SimDuration::ZERO);
        model.add_fluctuation(FluctuationWindow {
            start: SimTime(1_000_000_000),
            end: SimTime(2_000_000_000),
            min_extra: ms(10),
            max_extra: ms(100),
        });
        let mut rng = SimRng::new(4);
        let before = model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime(0))
            .unwrap();
        let during = model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime(1_500_000_000))
            .unwrap();
        let after = model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime(2_500_000_000))
            .unwrap();
        assert!(before < ms(5));
        assert!(during >= ms(10));
        assert!(after < ms(5));
    }

    #[test]
    fn partition_drops_messages_in_window() {
        let mut model = LatencyModel::new(ms(1), SimDuration::ZERO);
        model.add_fault(LinkFault::Partition {
            from: Some(NodeId(0)),
            to: None,
            start: SimTime(0),
            end: SimTime(1_000),
        });
        let mut rng = SimRng::new(5);
        assert!(model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime(500))
            .is_none());
        assert!(model
            .sample(&mut rng, NodeId(1), NodeId(0), SimTime(500))
            .is_some());
        assert!(model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime(5_000))
            .is_some());
    }

    #[test]
    fn slow_node_fault_only_affects_sender() {
        let mut model = LatencyModel::new(ms(1), SimDuration::ZERO);
        model.add_fault(LinkFault::SlowNode {
            node: NodeId(2),
            extra: ms(20),
            start: SimTime(0),
            end: SimTime(u64::MAX),
        });
        let mut rng = SimRng::new(6);
        let slow = model
            .sample(&mut rng, NodeId(2), NodeId(0), SimTime(0))
            .unwrap();
        let normal = model
            .sample(&mut rng, NodeId(0), NodeId(2), SimTime(0))
            .unwrap();
        assert!(slow >= ms(20));
        assert!(normal < ms(5));
    }

    #[test]
    fn group_partition_cuts_cross_group_links_both_ways() {
        let mut model = LatencyModel::new(ms(1), SimDuration::ZERO);
        model.add_fault(LinkFault::GroupPartition {
            members: LinkFault::group_mask([0, 1]),
            start: SimTime(0),
            end: SimTime(1_000),
        });
        let mut rng = SimRng::new(9);
        // Cross-group: dropped in both directions.
        assert!(model
            .sample(&mut rng, NodeId(0), NodeId(2), SimTime(500))
            .is_none());
        assert!(model
            .sample(&mut rng, NodeId(3), NodeId(1), SimTime(500))
            .is_none());
        // Same side: delivered.
        assert!(model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime(500))
            .is_some());
        assert!(model
            .sample(&mut rng, NodeId(2), NodeId(3), SimTime(500))
            .is_some());
        // Clients are never cut off.
        assert!(model
            .sample(&mut rng, NodeId(u64::MAX), NodeId(0), SimTime(500))
            .is_some());
        // Outside the window: delivered.
        assert!(model
            .sample(&mut rng, NodeId(0), NodeId(2), SimTime(5_000))
            .is_some());
    }

    #[test]
    fn topology_links_sample_their_own_distribution() {
        let mut topo = crate::topology::Topology::uniform(ms(1), SimDuration::ZERO);
        let a = topo.add_region(
            "a",
            [0, 1],
            crate::topology::DelayDist::new(ms(1), SimDuration::ZERO),
        );
        let b = topo.add_region(
            "b",
            [2, 3],
            crate::topology::DelayDist::new(ms(2), SimDuration::ZERO),
        );
        topo.set_inter(
            a,
            b,
            crate::topology::DelayDist::new(ms(50), SimDuration::ZERO),
        );
        topo.symmetrize();
        let model = LatencyModel::with_topology(topo);
        let mut rng = SimRng::new(10);
        let intra = model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime::ZERO)
            .unwrap();
        let inter = model
            .sample(&mut rng, NodeId(1), NodeId(3), SimTime::ZERO)
            .unwrap();
        let back = model
            .sample(&mut rng, NodeId(2), NodeId(0), SimTime::ZERO)
            .unwrap();
        assert!(intra < ms(2), "intra {intra:?}");
        assert!(inter >= ms(45), "inter {inter:?}");
        assert!(back >= ms(45), "mirrored inter {back:?}");
    }

    #[test]
    fn lookahead_is_the_min_link_floor_plus_min_extra() {
        // Default-config class: mean 250 µs, σ 50 µs. link_floor =
        // max(1 µs, 62.5 µs, 250 − 150 µs) = 100 µs.
        let us = SimDuration::from_micros;
        let model = LatencyModel::new(us(250), us(50));
        assert_eq!(model.lookahead(), us(100));
        // The constant extra delay raises the bound by max(0, extra−jitter).
        let with_extra = LatencyModel::new(us(250), us(50)).with_extra_delay(us(30), us(10));
        assert_eq!(with_extra.lookahead(), us(120));
        let jitter_swallows = LatencyModel::new(us(250), us(50)).with_extra_delay(us(5), us(10));
        assert_eq!(jitter_swallows.lookahead(), us(100));
        // Heterogeneous topology: the fastest class bounds the window.
        let mut topo = crate::topology::Topology::uniform(ms(40), ms(4));
        topo.add_region(
            "lan",
            [0, 1],
            crate::topology::DelayDist::new(us(200), us(20)),
        );
        let hetero = LatencyModel::with_topology(topo);
        // lan intra class: max(1 µs, 50 µs, 200 − 60 µs) = 140 µs.
        assert_eq!(hetero.lookahead(), us(140));
    }

    #[test]
    fn sampled_delays_never_undercut_the_lookahead() {
        let us = SimDuration::from_micros;
        // A noisy class (σ close to mean) exercises the 3σ/quarter-mean
        // clamp: even deep-left-tail draws respect the published bound.
        let model = LatencyModel::new(us(100), us(80)).with_extra_delay(us(20), us(50));
        let bound = model.lookahead();
        let mut rng = SimRng::new(11);
        for i in 0..20_000u64 {
            let d = model
                .sample(&mut rng, NodeId(i % 4), NodeId((i + 1) % 4), SimTime::ZERO)
                .unwrap();
            assert!(d >= bound, "draw {d:?} below lookahead {bound:?}");
        }
    }

    #[test]
    fn self_delivery_uses_floor() {
        let model = LatencyModel::new(ms(5), ms(1));
        let mut rng = SimRng::new(7);
        let d = model
            .sample(&mut rng, NodeId(3), NodeId(3), SimTime::ZERO)
            .unwrap();
        assert_eq!(d, SimDuration::from_micros(1));
    }
}

//! Network latency model.
//!
//! One-way message delay between two replicas is sampled as
//!
//! ```text
//! delay = max(floor, Normal(mean, std)) + extra ± jitter + fluctuation(t) + slow(node)
//! ```
//!
//! mirroring the paper's assumption that the RTT between any two nodes follows
//! a normal distribution (§V-A2), plus the Table-I `delay` knob, the run-time
//! "slow" command, and the 10-second network-fluctuation window used in the
//! responsiveness experiment (Fig. 15). Partitions drop messages entirely.

use bamboo_types::{NodeId, SimDuration, SimTime};

use crate::rng::SimRng;

/// A time window during which every link experiences additional, uniformly
/// distributed delay in `[min_extra, max_extra]` — the paper's "network
/// fluctuation" injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FluctuationWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Minimum extra one-way delay during the window.
    pub min_extra: SimDuration,
    /// Maximum extra one-way delay during the window.
    pub max_extra: SimDuration,
}

impl FluctuationWindow {
    /// Returns true if `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }
}

/// A link-level fault: either a partition (messages dropped) or a slow link
/// (extra delay), active during a time window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkFault {
    /// Drop every message from `from` to `to` during the window.
    Partition {
        /// Sender side of the severed link (`None` = any sender).
        from: Option<NodeId>,
        /// Receiver side of the severed link (`None` = any receiver).
        to: Option<NodeId>,
        /// Window start.
        start: SimTime,
        /// Window end.
        end: SimTime,
    },
    /// Add a fixed extra delay to every message sent by `node` during the
    /// window (the run-time "slow" command).
    SlowNode {
        /// The slowed node.
        node: NodeId,
        /// Extra one-way delay.
        extra: SimDuration,
        /// Window start.
        start: SimTime,
        /// Window end.
        end: SimTime,
    },
}

/// Samples one-way network delays and applies injected faults.
#[derive(Clone, Debug)]
pub struct LatencyModel {
    mean: SimDuration,
    std: SimDuration,
    extra: SimDuration,
    extra_jitter: SimDuration,
    floor: SimDuration,
    fluctuations: Vec<FluctuationWindow>,
    faults: Vec<LinkFault>,
}

impl LatencyModel {
    /// Creates a model with the base normal distribution.
    pub fn new(mean: SimDuration, std: SimDuration) -> Self {
        Self {
            mean,
            std,
            extra: SimDuration::ZERO,
            extra_jitter: SimDuration::ZERO,
            floor: SimDuration::from_micros(1),
            fluctuations: Vec::new(),
            faults: Vec::new(),
        }
    }

    /// Adds the Table-I style constant extra delay with ± jitter.
    pub fn with_extra_delay(mut self, extra: SimDuration, jitter: SimDuration) -> Self {
        self.extra = extra;
        self.extra_jitter = jitter;
        self
    }

    /// Sets the minimum possible one-way delay.
    pub fn with_floor(mut self, floor: SimDuration) -> Self {
        self.floor = floor;
        self
    }

    /// Registers a network-fluctuation window.
    pub fn add_fluctuation(&mut self, window: FluctuationWindow) {
        self.fluctuations.push(window);
    }

    /// Registers a link fault (partition or slow node).
    pub fn add_fault(&mut self, fault: LinkFault) {
        self.faults.push(fault);
    }

    /// The configured mean one-way delay.
    pub fn mean(&self) -> SimDuration {
        self.mean
    }

    /// Returns `None` if the message is dropped (partition), otherwise the
    /// sampled one-way delay from `from` to `to` at send time `now`.
    pub fn sample(
        &self,
        rng: &mut SimRng,
        from: NodeId,
        to: NodeId,
        now: SimTime,
    ) -> Option<SimDuration> {
        // Partitions first.
        for fault in &self.faults {
            if let LinkFault::Partition {
                from: f,
                to: t,
                start,
                end,
            } = fault
            {
                let from_matches = f.map(|n| n == from).unwrap_or(true);
                let to_matches = t.map(|n| n == to).unwrap_or(true);
                if from_matches && to_matches && now >= *start && now < *end {
                    return None;
                }
            }
        }

        // Base normally distributed propagation delay.
        let base_ns = rng
            .normal(self.mean.as_nanos() as f64, self.std.as_nanos() as f64)
            .max(self.floor.as_nanos() as f64);
        let mut total = SimDuration::from_nanos(base_ns as u64);

        // Constant extra delay with uniform jitter in [-jitter, +jitter].
        if !self.extra.is_zero() || !self.extra_jitter.is_zero() {
            let jitter_ns = self.extra_jitter.as_nanos() as i64;
            let offset = if jitter_ns > 0 {
                rng.uniform_range(0, (2 * jitter_ns + 1) as u64) as i64 - jitter_ns
            } else {
                0
            };
            let extra_ns = (self.extra.as_nanos() as i64 + offset).max(0) as u64;
            total += SimDuration::from_nanos(extra_ns);
        }

        // Fluctuation windows.
        for window in &self.fluctuations {
            if window.contains(now) {
                let lo = window.min_extra.as_nanos();
                let hi = window.max_extra.as_nanos().max(lo + 1);
                total += SimDuration::from_nanos(rng.uniform_range(lo, hi));
            }
        }

        // Slow-node faults on the sender.
        for fault in &self.faults {
            if let LinkFault::SlowNode {
                node,
                extra,
                start,
                end,
            } = fault
            {
                if *node == from && now >= *start && now < *end {
                    total += *extra;
                }
            }
        }

        // Local delivery is cheap but not free.
        if from == to {
            return Some(self.floor);
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn base_delay_matches_distribution() {
        let model = LatencyModel::new(ms(5), SimDuration::from_micros(500));
        let mut rng = SimRng::new(1);
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|_| {
                model
                    .sample(&mut rng, NodeId(0), NodeId(1), SimTime::ZERO)
                    .unwrap()
                    .as_millis_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn extra_delay_shifts_the_mean() {
        let model =
            LatencyModel::new(ms(1), SimDuration::from_micros(100)).with_extra_delay(ms(10), ms(2));
        let mut rng = SimRng::new(2);
        let n = 5_000;
        let mean: f64 = (0..n)
            .map(|_| {
                model
                    .sample(&mut rng, NodeId(0), NodeId(1), SimTime::ZERO)
                    .unwrap()
                    .as_millis_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 11.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn delay_never_goes_below_floor() {
        let model = LatencyModel::new(SimDuration::from_nanos(10), ms(50))
            .with_floor(SimDuration::from_micros(3));
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let d = model
                .sample(&mut rng, NodeId(0), NodeId(1), SimTime::ZERO)
                .unwrap();
            assert!(d >= SimDuration::from_micros(3));
        }
    }

    #[test]
    fn fluctuation_applies_only_inside_window() {
        let mut model = LatencyModel::new(ms(1), SimDuration::ZERO);
        model.add_fluctuation(FluctuationWindow {
            start: SimTime(1_000_000_000),
            end: SimTime(2_000_000_000),
            min_extra: ms(10),
            max_extra: ms(100),
        });
        let mut rng = SimRng::new(4);
        let before = model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime(0))
            .unwrap();
        let during = model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime(1_500_000_000))
            .unwrap();
        let after = model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime(2_500_000_000))
            .unwrap();
        assert!(before < ms(5));
        assert!(during >= ms(10));
        assert!(after < ms(5));
    }

    #[test]
    fn partition_drops_messages_in_window() {
        let mut model = LatencyModel::new(ms(1), SimDuration::ZERO);
        model.add_fault(LinkFault::Partition {
            from: Some(NodeId(0)),
            to: None,
            start: SimTime(0),
            end: SimTime(1_000),
        });
        let mut rng = SimRng::new(5);
        assert!(model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime(500))
            .is_none());
        assert!(model
            .sample(&mut rng, NodeId(1), NodeId(0), SimTime(500))
            .is_some());
        assert!(model
            .sample(&mut rng, NodeId(0), NodeId(1), SimTime(5_000))
            .is_some());
    }

    #[test]
    fn slow_node_fault_only_affects_sender() {
        let mut model = LatencyModel::new(ms(1), SimDuration::ZERO);
        model.add_fault(LinkFault::SlowNode {
            node: NodeId(2),
            extra: ms(20),
            start: SimTime(0),
            end: SimTime(u64::MAX),
        });
        let mut rng = SimRng::new(6);
        let slow = model
            .sample(&mut rng, NodeId(2), NodeId(0), SimTime(0))
            .unwrap();
        let normal = model
            .sample(&mut rng, NodeId(0), NodeId(2), SimTime(0))
            .unwrap();
        assert!(slow >= ms(20));
        assert!(normal < ms(5));
    }

    #[test]
    fn self_delivery_uses_floor() {
        let model = LatencyModel::new(ms(5), ms(1));
        let mut rng = SimRng::new(7);
        let d = model
            .sample(&mut rng, NodeId(3), NodeId(3), SimTime::ZERO)
            .unwrap();
        assert_eq!(d, SimDuration::from_micros(1));
    }
}

//! Deterministic random number generation for the simulator.
//!
//! Every run of the simulator is a pure function of the configuration seed,
//! so experiments are exactly reproducible. The normal sampler is implemented
//! with the Box–Muller transform to avoid an extra dependency on `rand_distr`.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A seeded RNG with domain-specific sampling helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha12Rng,
    /// Cached second value from the Box–Muller transform.
    cached_gaussian: Option<f64>,
}

impl SimRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: ChaCha12Rng::seed_from_u64(seed),
            cached_gaussian: None,
        }
    }

    /// Derives an independent sub-stream, e.g. one per replica or per model,
    /// so adding randomness consumers does not perturb unrelated streams.
    pub fn derive(&self, label: u64) -> Self {
        let mut seed_bytes = [0u8; 32];
        let base = self.inner.get_seed();
        seed_bytes.copy_from_slice(&base);
        for (i, byte) in label.to_be_bytes().iter().enumerate() {
            seed_bytes[i] ^= *byte;
            seed_bytes[24 + i] ^= byte.wrapping_mul(0x9e);
        }
        Self {
            inner: ChaCha12Rng::from_seed(seed_bytes),
            cached_gaussian: None,
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `u64` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform choice of an index in `[0, n)`. Panics if `n == 0`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero, because there is nothing to choose.
    pub fn choose_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot choose from an empty range");
        self.inner.gen_range(0..n)
    }

    /// Standard-normal sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(cached) = self.cached_gaussian.take() {
            return cached;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen::<f64>();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_gaussian = Some(radius * theta.sin());
        radius * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given rate (events per unit time); used for
    /// Poisson inter-arrival times in the open-loop workload generator.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u: f64 = 1.0 - self.inner.gen::<f64>();
        -u.ln() / rate
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, probability: f64) -> bool {
        self.inner.gen_bool(probability.clamp(0.0, 1.0))
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derived_streams_are_independent_and_deterministic() {
        let base = SimRng::new(99);
        let mut d1 = base.derive(1);
        let mut d1_again = base.derive(1);
        let mut d2 = base.derive(2);
        assert_eq!(d1.next_u64(), d1_again.next_u64());
        assert_ne!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn normal_sampling_matches_moments() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_sampling_matches_mean() {
        let mut rng = SimRng::new(6);
        let rate = 4.0;
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn uniform_range_and_choose_index_bounds() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform_range(10, 20);
            assert!((10..20).contains(&v));
            let idx = rng.choose_index(7);
            assert!(idx < 7);
        }
        assert_eq!(rng.uniform_range(5, 5), 5);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}

//! Deterministic random number generation for the simulator.
//!
//! Every run of the simulator is a pure function of the configuration seed,
//! so experiments are exactly reproducible. The generator is a from-scratch
//! xoshiro256++ (Blackman & Vigna) seeded through SplitMix64, so the
//! workspace carries no external RNG dependency; the normal sampler is
//! implemented with the Box–Muller transform.

/// SplitMix64 step, used for seeding and sub-stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded RNG with domain-specific sampling helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    /// xoshiro256++ state.
    s: [u64; 4],
    /// The seed the generator was created from (kept for sub-stream
    /// derivation).
    seed: u64,
    /// Cached second value from the Box–Muller transform.
    cached_gaussian: Option<f64>,
}

impl SimRng {
    /// Creates an RNG from a seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            s,
            seed,
            cached_gaussian: None,
        }
    }

    /// Derives an independent sub-stream, e.g. one per replica or per model,
    /// so adding randomness consumers does not perturb unrelated streams.
    pub fn derive(&self, label: u64) -> Self {
        let mut sm = self.seed ^ label.wrapping_mul(0xA076_1D64_78BD_642F);
        Self::new(splitmix64(&mut sm))
    }

    /// The next raw 64-bit value (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let range = hi - lo;
        // Lemire's multiply-shift range reduction; the residual bias is below
        // 2^-64 per draw, irrelevant for a simulation.
        lo + ((self.next_u64() as u128 * range as u128) >> 64) as u64
    }

    /// Uniform choice of an index in `[0, n)`. Panics if `n == 0`.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero, because there is nothing to choose.
    pub fn choose_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot choose from an empty range");
        self.uniform_range(0, n as u64) as usize
    }

    /// Standard-normal sample via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(cached) = self.cached_gaussian.take() {
            return cached;
        }
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.uniform();
        let u2: f64 = self.uniform();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_gaussian = Some(radius * theta.sin());
        radius * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Exponential sample with the given rate (events per unit time); used for
    /// Poisson inter-arrival times in the open-loop workload generator.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u: f64 = 1.0 - self.uniform();
        -u.ln() / rate
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, probability: f64) -> bool {
        self.uniform() < probability.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derived_streams_are_independent_and_deterministic() {
        let base = SimRng::new(99);
        let mut d1 = base.derive(1);
        let mut d1_again = base.derive(1);
        let mut d2 = base.derive(2);
        assert_eq!(d1.next_u64(), d1_again.next_u64());
        assert_ne!(d1.next_u64(), d2.next_u64());
    }

    #[test]
    fn uniform_is_in_unit_interval_and_well_spread() {
        let mut rng = SimRng::new(11);
        let n = 20_000;
        let mut mean = 0.0;
        for _ in 0..n {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            mean += u;
        }
        mean /= n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_sampling_matches_moments() {
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_sampling_matches_mean() {
        let mut rng = SimRng::new(6);
        let rate = 4.0;
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn uniform_range_and_choose_index_bounds() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let v = rng.uniform_range(10, 20);
            assert!((10..20).contains(&v));
            let idx = rng.choose_index(7);
            assert!(idx < 7);
        }
        assert_eq!(rng.uniform_range(5, 5), 5);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(8);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}

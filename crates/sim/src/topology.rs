//! Heterogeneous network topology: regions and per-link delay distributions.
//!
//! The paper assumes the RTT between *any* two nodes follows one normal
//! distribution (§V-A2) — a homogeneous network. Real WAN deployments are
//! not like that: replicas cluster into regions with sub-millisecond
//! intra-region delay and tens of milliseconds between regions, and
//! individual links can be asymmetric (satellite backhaul, congested
//! transit). "Unraveling Responsiveness of Chained BFT Consensus with
//! Network Delay" shows such heterogeneity qualitatively changes chained-BFT
//! behaviour, so the scenario engine models it.
//!
//! A [`Topology`] maps an ordered pair of nodes to a [`DelayDist`] — the
//! parameters of the normal distribution their one-way delay is drawn from:
//!
//! 1. an exact per-link override, if one was registered (checked first, so
//!    any link can be specialised — asymmetrically, since the pair is
//!    ordered);
//! 2. the region matrix, when both endpoints belong to regions: the
//!    diagonal holds intra-region distributions, off-diagonal entries the
//!    inter-region ones (asymmetric entries allowed, symmetric by default —
//!    see [`Topology::symmetrize`]);
//! 3. the default distribution otherwise — in particular for the simulated
//!    clients, which live outside every region.
//!
//! The topology is pure data: sampling stays in
//! [`crate::LatencyModel`], which draws `Normal(dist.mean, dist.std)` from
//! the run's [`crate::SimRng`]. A [`Topology::uniform`] topology therefore
//! consumes the RNG exactly like the pre-topology scalar model and produces
//! bit-identical delay streams — the property tests pin this.

use bamboo_types::{NodeId, SimDuration};

/// Parameters of one link class: one-way delay `~ Normal(mean, std)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayDist {
    /// Mean one-way delay.
    pub mean: SimDuration,
    /// Standard deviation of the one-way delay.
    pub std: SimDuration,
}

impl DelayDist {
    /// Creates a distribution from mean and standard deviation.
    pub fn new(mean: SimDuration, std: SimDuration) -> Self {
        Self { mean, std }
    }
}

/// A named group of replicas sharing an intra-region delay distribution.
#[derive(Clone, Debug)]
struct Region {
    name: String,
}

/// Per-pair delay-distribution map: regions, an inter-region matrix and
/// sparse per-link overrides.
#[derive(Clone, Debug)]
pub struct Topology {
    default: DelayDist,
    regions: Vec<Region>,
    /// `node id -> region index`, `None` for nodes outside every region
    /// (and implicitly for ids beyond the vector, e.g. the client id).
    node_region: Vec<Option<u32>>,
    /// Row-major `regions × regions` matrix; `[r][r]` is the intra-region
    /// distribution.
    matrix: Vec<DelayDist>,
    /// Which matrix entries were set explicitly (vs. inherited defaults) —
    /// consulted by [`Topology::symmetrize`].
    explicit: Vec<bool>,
    /// Exact ordered-pair overrides, checked before the region matrix.
    overrides: Vec<(NodeId, NodeId, DelayDist)>,
}

impl Topology {
    /// A homogeneous topology: every link (including client links) uses one
    /// distribution. Equivalent to the paper's §V-A2 assumption and to the
    /// pre-topology scalar latency model.
    pub fn uniform(mean: SimDuration, std: SimDuration) -> Self {
        Self::new(DelayDist::new(mean, std))
    }

    /// Creates a topology with the given default distribution and no regions.
    pub fn new(default: DelayDist) -> Self {
        Self {
            default,
            regions: Vec::new(),
            node_region: Vec::new(),
            matrix: Vec::new(),
            explicit: Vec::new(),
            overrides: Vec::new(),
        }
    }

    /// The fallback distribution (also used for client links).
    pub fn default_dist(&self) -> DelayDist {
        self.default
    }

    /// Number of declared regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Resolves a region name to its index.
    pub fn region_id(&self, name: &str) -> Option<usize> {
        self.regions.iter().position(|r| r.name == name)
    }

    /// The region a node belongs to, if any.
    pub fn region_of(&self, node: NodeId) -> Option<usize> {
        usize::try_from(node.0)
            .ok()
            .and_then(|i| self.node_region.get(i).copied())
            .flatten()
            .map(|r| r as usize)
    }

    /// Declares a region containing `nodes` with intra-region distribution
    /// `intra`, returning its index. The inter-region entries to and from
    /// every existing region start as the default distribution until
    /// [`Topology::set_inter`] overrides them.
    ///
    /// # Panics
    ///
    /// Panics if a node is already assigned to another region or the region
    /// name is already taken — scenario specs are static data, so overlap is
    /// a spec bug worth failing loudly on.
    pub fn add_region(
        &mut self,
        name: &str,
        nodes: impl IntoIterator<Item = u64>,
        intra: DelayDist,
    ) -> usize {
        assert!(
            self.region_id(name).is_none(),
            "duplicate region name {name:?}"
        );
        let id = self.regions.len();
        self.regions.push(Region {
            name: name.to_string(),
        });
        // Grow the matrix from (id)² to (id + 1)², preserving row-major
        // layout, with the new row/column at the default distribution.
        let old = id;
        let new = id + 1;
        let mut matrix = vec![self.default; new * new];
        let mut explicit = vec![false; new * new];
        for r in 0..old {
            for c in 0..old {
                matrix[r * new + c] = self.matrix[r * old + c];
                explicit[r * new + c] = self.explicit[r * old + c];
            }
        }
        matrix[id * new + id] = intra;
        explicit[id * new + id] = true;
        self.matrix = matrix;
        self.explicit = explicit;
        for node in nodes {
            let index = usize::try_from(node).expect("node id fits in usize");
            if index >= self.node_region.len() {
                self.node_region.resize(index + 1, None);
            }
            assert!(
                self.node_region[index].is_none(),
                "node {node} assigned to two regions"
            );
            self.node_region[index] = Some(id as u32);
        }
        id
    }

    /// Sets the one-way inter-region distribution `from → to`. Directions
    /// are independent, so asymmetric region pairs are expressible; call
    /// [`Topology::symmetrize`] afterwards to mirror the unset reverses.
    ///
    /// # Panics
    ///
    /// Panics if either region index is out of range.
    pub fn set_inter(&mut self, from: usize, to: usize, dist: DelayDist) {
        let n = self.regions.len();
        assert!(from < n && to < n, "region index out of range");
        self.matrix[from * n + to] = dist;
        self.explicit[from * n + to] = true;
    }

    /// Mirrors every explicitly set `a → b` matrix entry onto an
    /// unset `b → a` — the "symmetric by default" rule: one
    /// [`Topology::set_inter`] call describes a bidirectional link unless
    /// the opposite direction was also set explicitly.
    pub fn symmetrize(&mut self) {
        let n = self.regions.len();
        for a in 0..n {
            for b in 0..n {
                if a != b && self.explicit[a * n + b] && !self.explicit[b * n + a] {
                    self.matrix[b * n + a] = self.matrix[a * n + b];
                }
            }
        }
    }

    /// Registers an exact override for the ordered link `from → to`,
    /// shadowing the region matrix. Overrides are one-directional — register
    /// both directions for a symmetric special link.
    pub fn override_link(&mut self, from: NodeId, to: NodeId, dist: DelayDist) {
        if let Some(entry) = self
            .overrides
            .iter_mut()
            .find(|(f, t, _)| *f == from && *t == to)
        {
            entry.2 = dist;
        } else {
            self.overrides.push((from, to, dist));
        }
    }

    /// True when no regions or overrides are declared — every pair resolves
    /// to the default distribution.
    pub fn is_uniform(&self) -> bool {
        self.regions.is_empty() && self.overrides.is_empty()
    }

    /// Every delay class an ordered link may resolve to: the default
    /// distribution, all region-matrix entries and all per-link overrides.
    ///
    /// This is a conservative superset — matrix entries between regions no
    /// node pair actually crosses are included — which is exactly what a
    /// lookahead bound wants: minimising over extra classes can only shrink
    /// the window, never break its safety.
    pub fn link_classes(&self) -> impl Iterator<Item = DelayDist> + '_ {
        std::iter::once(self.default)
            .chain(self.matrix.iter().copied())
            .chain(self.overrides.iter().map(|(_, _, d)| *d))
    }

    /// The delay distribution of the ordered link `from → to`.
    pub fn dist(&self, from: NodeId, to: NodeId) -> DelayDist {
        for (f, t, dist) in &self.overrides {
            if *f == from && *t == to {
                return *dist;
            }
        }
        match (self.region_of(from), self.region_of(to)) {
            (Some(a), Some(b)) => self.matrix[a * self.regions.len() + b],
            _ => self.default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn us(v: u64) -> SimDuration {
        SimDuration::from_micros(v)
    }

    fn dist(mean: SimDuration) -> DelayDist {
        DelayDist::new(mean, SimDuration::from_micros(10))
    }

    #[test]
    fn uniform_topology_resolves_every_pair_to_default() {
        let topo = Topology::uniform(us(250), us(50));
        assert!(topo.is_uniform());
        assert_eq!(topo.dist(NodeId(0), NodeId(1)).mean, us(250));
        assert_eq!(topo.dist(NodeId(7), NodeId(3)).mean, us(250));
        // Client links fall back to the default too.
        assert_eq!(topo.dist(NodeId(u64::MAX), NodeId(0)).mean, us(250));
    }

    #[test]
    fn regions_give_intra_and_inter_distributions() {
        let mut topo = Topology::new(dist(us(250)));
        let us_east = topo.add_region("us-east", [0, 1], dist(us(300)));
        let eu = topo.add_region("eu-west", [2, 3], dist(us(400)));
        topo.set_inter(us_east, eu, dist(ms(40)));
        topo.symmetrize();

        assert_eq!(topo.dist(NodeId(0), NodeId(1)).mean, us(300), "intra us");
        assert_eq!(topo.dist(NodeId(2), NodeId(3)).mean, us(400), "intra eu");
        assert_eq!(topo.dist(NodeId(0), NodeId(2)).mean, ms(40), "inter");
        assert_eq!(topo.dist(NodeId(3), NodeId(1)).mean, ms(40), "mirrored");
        // A node outside every region uses the default.
        assert_eq!(topo.dist(NodeId(9), NodeId(0)).mean, us(250));
    }

    #[test]
    fn inter_region_links_can_be_asymmetric() {
        let mut topo = Topology::new(dist(us(100)));
        let a = topo.add_region("a", [0], dist(us(100)));
        let b = topo.add_region("b", [1], dist(us(100)));
        topo.set_inter(a, b, dist(ms(10)));
        topo.set_inter(b, a, dist(ms(90)));
        topo.symmetrize();
        assert_eq!(topo.dist(NodeId(0), NodeId(1)).mean, ms(10));
        assert_eq!(topo.dist(NodeId(1), NodeId(0)).mean, ms(90));
    }

    #[test]
    fn link_overrides_shadow_the_region_matrix_one_way() {
        let mut topo = Topology::new(dist(us(100)));
        topo.add_region("all", [0, 1, 2], dist(us(100)));
        topo.override_link(NodeId(0), NodeId(1), dist(ms(80)));
        assert_eq!(topo.dist(NodeId(0), NodeId(1)).mean, ms(80));
        assert_eq!(topo.dist(NodeId(1), NodeId(0)).mean, us(100), "reverse");
        // Re-registering replaces.
        topo.override_link(NodeId(0), NodeId(1), dist(ms(5)));
        assert_eq!(topo.dist(NodeId(0), NodeId(1)).mean, ms(5));
    }

    #[test]
    #[should_panic(expected = "two regions")]
    fn overlapping_regions_panic() {
        let mut topo = Topology::new(dist(us(100)));
        topo.add_region("a", [0, 1], dist(us(100)));
        topo.add_region("b", [1, 2], dist(us(100)));
    }

    #[test]
    fn region_lookup_by_name_and_node() {
        let mut topo = Topology::new(dist(us(100)));
        topo.add_region("east", [0, 1], dist(us(100)));
        topo.add_region("west", [5], dist(us(100)));
        assert_eq!(topo.region_id("west"), Some(1));
        assert_eq!(topo.region_id("north"), None);
        assert_eq!(topo.region_of(NodeId(5)), Some(1));
        assert_eq!(topo.region_of(NodeId(3)), None);
        assert_eq!(topo.region_of(NodeId(u64::MAX)), None);
        assert_eq!(topo.region_count(), 2);
    }
}

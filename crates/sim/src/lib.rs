//! Discrete-event simulation substrate for bamboo-rs.
//!
//! The original Bamboo deploys replicas on cloud VMs connected by TCP. This
//! crate replaces that deployment substrate with a deterministic
//! discrete-event simulator whose delay composition follows the paper's own
//! performance model (§V):
//!
//! * a pending-event queue ordered by simulated time ([`EventQueue`]),
//! * a network latency model with normally distributed one-way delays drawn
//!   per link from a heterogeneous [`Topology`] (regions + per-link
//!   overrides; a uniform topology reproduces the paper's §V-A2 network),
//!   configurable added delay (the Table-I `delay` knob), run-time network
//!   fluctuation windows and partitions ([`LatencyModel`]),
//! * a NIC/bandwidth model charging `2·m/b` per message ([`NicModel`]),
//! * a CPU model charging a constant `t_CPU` per cryptographic operation
//!   ([`CpuModel`]),
//! * a deterministic RNG seeded from the run configuration ([`SimRng`]).
//!
//! All components are pure data + sampling; the orchestration loop lives in
//! `bamboo-core::runner`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod latency;
pub mod nic;
pub mod queue;
pub mod rng;
pub mod topology;

pub use cpu::CpuModel;
pub use latency::{FluctuationWindow, LatencyModel, LinkFault};
pub use nic::NicModel;
pub use queue::EventQueue;
pub use rng::SimRng;
pub use topology::{DelayDist, Topology};

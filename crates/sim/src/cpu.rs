//! CPU cost model.
//!
//! The paper's model charges a constant `t_CPU` per cryptographic operation
//! (signing a vote, verifying a signature, assembling or checking a QC). The
//! [`CpuModel`] translates counts of such operations into simulated time and
//! also exposes a per-transaction execution cost so that very large blocks are
//! not free to process.

use bamboo_types::SimDuration;

/// Charges simulated CPU time for protocol processing steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuModel {
    /// Cost of one signature/verification (`t_CPU`).
    crypto_op: SimDuration,
    /// Cost of handling one transaction (hashing, mempool bookkeeping).
    per_tx: SimDuration,
}

impl CpuModel {
    /// Creates a CPU model with the given per-crypto-operation cost and no
    /// per-transaction cost.
    pub fn new(crypto_op: SimDuration) -> Self {
        Self {
            crypto_op,
            per_tx: SimDuration::ZERO,
        }
    }

    /// Sets the per-transaction processing cost.
    pub fn with_per_tx(mut self, per_tx: SimDuration) -> Self {
        self.per_tx = per_tx;
        self
    }

    /// The cost of one cryptographic operation.
    pub fn crypto_op(&self) -> SimDuration {
        self.crypto_op
    }

    /// Cost of signing a single message (vote, proposal, timeout).
    pub fn sign(&self) -> SimDuration {
        self.crypto_op
    }

    /// Cost of verifying `signatures` signatures (e.g. the contents of a QC).
    pub fn verify(&self, signatures: usize) -> SimDuration {
        SimDuration::from_nanos(self.crypto_op.as_nanos() * signatures as u64)
    }

    /// Cost of processing a proposal carrying `txs` transactions: one
    /// signature verification for the proposer, one for the embedded QC
    /// treated as a single aggregate check, plus per-transaction work.
    ///
    /// The flat aggregate charge is deliberate: the paper's block service
    /// time (Eq. 4, `t_s = 3·t_CPU + …`) models happy-path crypto as a
    /// constant per block, and the Fig. 8 model-vs-simulation tracking test
    /// pins the simulator to that equation. The real per-signer cost of the
    /// ingress check is measured by the `verify_*` micro-benches instead,
    /// and off-happy-path pacemaker certificates (timeouts, TCs), which
    /// Eq. 4 does not model, *are* charged per signer in `Replica::handle`.
    pub fn process_proposal(&self, txs: usize) -> SimDuration {
        self.verify(2) + SimDuration::from_nanos(self.per_tx.as_nanos() * txs as u64)
    }

    /// Cost of verifying a batch of `signatures` client-request signatures at
    /// the replica edge: one crypto op per 4-wide interleaved pass
    /// (`⌈n/4⌉ · t_CPU`). Client requests all sign the same fixed-length
    /// tuple, so the whole batch runs through the quad hasher — this is the
    /// amortisation the charge models, and what makes authenticated ingress
    /// affordable at millions of arrivals.
    pub fn verify_batch(&self, signatures: usize) -> SimDuration {
        let passes = (signatures as u64).div_ceil(4);
        SimDuration::from_nanos(self.crypto_op.as_nanos() * passes)
    }

    /// Cost of assembling a block of `txs` transactions (batching + hashing +
    /// signing the proposal).
    pub fn assemble_block(&self, txs: usize) -> SimDuration {
        self.sign() + SimDuration::from_nanos(self.per_tx.as_nanos() * txs as u64)
    }

    /// Cost of encoding, decoding or integrity-checking `bytes` of checkpoint
    /// snapshot: one crypto-op-equivalent per 4 KiB (hashing dominates both
    /// directions), minimum one. Charged when a replica takes a checkpoint,
    /// serves its snapshot to a syncing peer, or installs a received one.
    pub fn snapshot(&self, bytes: usize) -> SimDuration {
        let chunks = (bytes as u64).div_ceil(4096).max(1);
        SimDuration::from_nanos(self.crypto_op.as_nanos() * chunks)
    }

    /// Cost of reading or writing `bytes` of durable segment log: one
    /// crypto-op-equivalent per 16 KiB, minimum one. Sequential log I/O is
    /// cheaper per byte than the hash-dominated snapshot path, but it is not
    /// free — fsync batching and log replay after a durable restart must
    /// show up in the simulated clock so recovery latency is a measurable,
    /// deterministic output at every shard count.
    pub fn disk_io(&self, bytes: usize) -> SimDuration {
        let chunks = (bytes as u64).div_ceil(16 * 1024).max(1);
        SimDuration::from_nanos(self.crypto_op.as_nanos() * chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_scales_with_signature_count() {
        let cpu = CpuModel::new(SimDuration::from_micros(20));
        assert_eq!(cpu.verify(0), SimDuration::ZERO);
        assert_eq!(cpu.verify(3), SimDuration::from_micros(60));
        assert_eq!(cpu.sign(), SimDuration::from_micros(20));
    }

    #[test]
    fn per_tx_cost_applies_to_blocks() {
        let cpu =
            CpuModel::new(SimDuration::from_micros(10)).with_per_tx(SimDuration::from_nanos(100));
        let small = cpu.process_proposal(10);
        let large = cpu.process_proposal(1_000);
        assert!(large > small);
        assert_eq!(
            large.as_nanos() - small.as_nanos(),
            990 * 100,
            "difference is purely per-tx work"
        );
        assert!(cpu.assemble_block(400) > cpu.sign());
    }

    #[test]
    fn batch_verification_amortises_four_wide() {
        let cpu = CpuModel::new(SimDuration::from_micros(20));
        assert_eq!(cpu.verify_batch(0), SimDuration::ZERO);
        assert_eq!(cpu.verify_batch(1), SimDuration::from_micros(20));
        assert_eq!(cpu.verify_batch(4), SimDuration::from_micros(20));
        assert_eq!(cpu.verify_batch(5), SimDuration::from_micros(40));
        assert_eq!(cpu.verify_batch(64), cpu.verify(16));
    }

    #[test]
    fn zero_cost_model_is_free() {
        let cpu = CpuModel::new(SimDuration::ZERO);
        assert_eq!(cpu.process_proposal(400), SimDuration::ZERO);
        assert_eq!(cpu.assemble_block(400), SimDuration::ZERO);
    }
}

//! The pending-event queue at the heart of the discrete-event simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bamboo_types::SimTime;

/// A time-ordered event queue.
///
/// Events scheduled for the same instant are delivered in insertion order
/// (FIFO), which keeps simulations deterministic.
///
/// # Example
///
/// ```
/// use bamboo_sim::EventQueue;
/// use bamboo_types::SimTime;
///
/// let mut queue = EventQueue::new();
/// queue.schedule(SimTime(20), "second");
/// queue.schedule(SimTime(10), "first");
/// queue.schedule(SimTime(20), "third");
/// assert_eq!(queue.pop(), Some((SimTime(10), "first")));
/// assert_eq!(queue.pop(), Some((SimTime(20), "second")));
/// assert_eq!(queue.pop(), Some((SimTime(20), "third")));
/// assert_eq!(queue.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    /// Total number of events ever scheduled (for diagnostics).
    scheduled: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            scheduled: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.heap.push(Reverse(Entry {
            time,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
        self.scheduled += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap
            .pop()
            .map(|Reverse(entry)| (entry.time, entry.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(entry)| entry.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 3);
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        assert_eq!(q.pop(), Some((SimTime(30), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_scheduled(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(40), "d");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        q.schedule(SimTime(20), "b");
        q.schedule(SimTime(30), "c");
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), Some((SimTime(40), "d")));
    }
}

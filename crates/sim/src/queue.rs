//! The pending-event queue at the heart of the discrete-event simulator.
//!
//! A simulation schedule is sharply bimodal: the bulk of events are
//! *near-future* deliveries (NIC + link latency, tens to hundreds of
//! microseconds out) while a thin tail of *far* timers (pacemaker view
//! timeouts, workload windows) sits orders of magnitude later. A single
//! binary heap pays `O(log n)` comparisons **and** moves whole entries on
//! every operation; the [`EventQueue`] here instead uses a slab-backed
//! two-level structure:
//!
//! * **slab** — every event is stored once in an index-stable arena; the
//!   ordering structures shuffle 4-byte slot indices, never the events
//!   themselves,
//! * **bucket wheel** — near-future events (within ~8 ms) hash into a
//!   circular array of buckets keyed by `time >> BUCKET_SHIFT`; scheduling is
//!   O(1) and popping sorts each bucket once when the cursor reaches it,
//! * **overflow heap** — far events go to a small binary heap of
//!   `(time, seq, slot)` keys and are compared against the wheel at pop time,
//!   so timers neither bloat the wheel nor break ordering.
//!
//! Events scheduled for the same instant are delivered in insertion order
//! (FIFO), exactly like the previous heap-based queue — the property tests
//! in `tests/queue_properties.rs` pin pop-order equality against a reference
//! binary heap over randomised schedules with ties, and the golden-replay
//! suite pins whole-simulation equality.
//!
//! # Example
//!
//! ```
//! use bamboo_sim::EventQueue;
//! use bamboo_types::SimTime;
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime(20), "second");
//! queue.schedule(SimTime(10), "first");
//! queue.schedule(SimTime(20), "third");
//! assert_eq!(queue.pop(), Some((SimTime(10), "first")));
//! assert_eq!(queue.pop(), Some((SimTime(20), "second")));
//! assert_eq!(queue.pop(), Some((SimTime(20), "third")));
//! assert_eq!(queue.pop(), None);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bamboo_types::SimTime;

/// log2 of the bucket width in nanoseconds: 8.192 µs buckets, matching the
/// microsecond-scale spread of modelled message deliveries.
const BUCKET_SHIFT: u32 = 13;
/// Number of wheel buckets (power of two). Together with the bucket width
/// this covers a ~8.4 ms near-future horizon; anything later overflows to
/// the far heap.
const NUM_BUCKETS: u64 = 1024;

/// A time-ordered event queue with same-instant FIFO delivery.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// Index-stable event storage; `free` recycles vacated slots.
    slab: Vec<Option<Slot<E>>>,
    free: Vec<u32>,
    /// Near-future buckets of slot indices, addressed by absolute bucket
    /// index modulo `NUM_BUCKETS`.
    wheel: Vec<Vec<u32>>,
    /// Live entries currently stored in the wheel.
    wheel_live: usize,
    /// Far events as `(time, seq, slot)` keys — entries beyond the wheel
    /// horizon at schedule time.
    overflow: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Absolute bucket index the pop cursor is currently draining.
    cursor: u64,
    /// Whether the cursor's bucket has been sorted (descending by key, so
    /// pops are `Vec::pop`). Late arrivals into the sorted bucket are
    /// binary-inserted.
    cursor_sorted: bool,
    seq: u64,
    /// Total number of events ever scheduled (for diagnostics).
    scheduled: u64,
    /// Live entries across wheel and overflow.
    len: usize,
    /// Highest live length ever observed (for memory diagnostics).
    high_water: usize,
}

#[derive(Debug, Clone)]
struct Slot<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            slab: Vec::new(),
            free: Vec::new(),
            wheel: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            wheel_live: 0,
            overflow: BinaryHeap::new(),
            cursor: 0,
            cursor_sorted: false,
            seq: 0,
            scheduled: 0,
            len: 0,
            high_water: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        self.len += 1;
        self.high_water = self.high_water.max(self.len);

        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(Slot { time, seq, event });
                slot
            }
            None => {
                self.slab.push(Some(Slot { time, seq, event }));
                (self.slab.len() - 1) as u32
            }
        };

        // Clamp into the cursor's bucket: the simulator never schedules
        // before "now", but an event landing inside the bucket currently
        // being drained must still sort by its (time, seq) key.
        let bucket = (time.as_nanos() >> BUCKET_SHIFT).max(self.cursor);
        if bucket >= self.cursor + NUM_BUCKETS {
            self.overflow.push(Reverse((time, seq, slot)));
            return;
        }
        let index = (bucket % NUM_BUCKETS) as usize;
        if bucket == self.cursor && self.cursor_sorted {
            // Keep the drained bucket's descending order intact.
            let key = (time, seq);
            let position = self.wheel[index].partition_point(|&s| self.key_of(s) > key);
            self.wheel[index].insert(position, slot);
        } else {
            self.wheel[index].push(slot);
        }
        self.wheel_live += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_bounded(None)
    }

    /// Removes and returns the earliest event if it fires strictly before
    /// `limit`; otherwise leaves the queue untouched and returns `None`.
    ///
    /// This is the windowed-execution primitive: a shard drains its queue up
    /// to a barrier without paying the O(bucket scan) of a separate
    /// [`EventQueue::peek_time`] before every pop.
    pub fn pop_if_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        self.pop_bounded(Some(limit))
    }

    fn pop_bounded(&mut self, limit: Option<SimTime>) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let wheel_key = self.advance_to_wheel_min();
        let overflow_key = self.overflow.peek().map(|Reverse((t, s, _))| (*t, *s));

        let (best, from_wheel) = match (wheel_key, overflow_key) {
            (Some(w), Some(o)) => {
                if w < o {
                    (w, true)
                } else {
                    (o, false)
                }
            }
            (Some(w), None) => (w, true),
            (None, Some(o)) => (o, false),
            (None, None) => return None,
        };
        if limit.is_some_and(|l| best.0 >= l) {
            return None;
        }
        let slot = if from_wheel {
            let index = (self.cursor % NUM_BUCKETS) as usize;
            self.wheel_live -= 1;
            self.wheel[index].pop().expect("bucket is non-empty")
        } else {
            let Reverse((_, _, slot)) = self.overflow.pop().expect("overflow is non-empty");
            slot
        };

        let Slot { time, event, .. } = self.slab[slot as usize]
            .take()
            .expect("slot holds a live event");
        self.free.push(slot);
        self.len -= 1;

        // Keep the wheel window anchored at the pop frontier so subsequent
        // schedules land in the right buckets. Jumping is safe: every live
        // wheel entry has time >= the popped minimum, hence an equal or later
        // bucket.
        let bucket = time.as_nanos() >> BUCKET_SHIFT;
        if bucket > self.cursor {
            self.cursor = bucket;
            self.cursor_sorted = false;
        }
        Some((time, event))
    }

    /// Advances the cursor to the first non-empty wheel bucket and returns
    /// the minimum `(time, seq)` key stored there, sorting the bucket on
    /// first touch so subsequent pops are O(1).
    fn advance_to_wheel_min(&mut self) -> Option<(SimTime, u64)> {
        if self.wheel_live == 0 {
            return None;
        }
        while self.wheel[(self.cursor % NUM_BUCKETS) as usize].is_empty() {
            self.cursor += 1;
            self.cursor_sorted = false;
        }
        let index = (self.cursor % NUM_BUCKETS) as usize;
        if !self.cursor_sorted {
            let mut bucket = std::mem::take(&mut self.wheel[index]);
            let slab = &self.slab;
            bucket.sort_unstable_by_key(|&slot| {
                let entry = slab[slot as usize].as_ref().expect("live slot");
                Reverse((entry.time, entry.seq))
            });
            self.wheel[index] = bucket;
            self.cursor_sorted = true;
        }
        let last = *self.wheel[index].last().expect("bucket is non-empty");
        Some(self.key_of(last))
    }

    fn key_of(&self, slot: u32) -> (SimTime, u64) {
        let entry = self.slab[slot as usize].as_ref().expect("live slot");
        (entry.time, entry.seq)
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        let mut best: Option<(SimTime, u64)> = None;
        if self.wheel_live > 0 {
            // Non-mutating scan: find the first non-empty bucket from the
            // cursor and take its minimum key.
            for offset in 0..NUM_BUCKETS {
                let index = ((self.cursor + offset) % NUM_BUCKETS) as usize;
                if self.wheel[index].is_empty() {
                    continue;
                }
                best = self.wheel[index].iter().map(|&s| self.key_of(s)).min();
                break;
            }
        }
        if let Some(Reverse((time, seq, _))) = self.overflow.peek() {
            let key = (*time, *seq);
            if best.map_or(true, |b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(time, _)| time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events scheduled over the queue's lifetime.
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Highest number of simultaneously pending events ever observed — the
    /// memory high-water mark of the queue, surfaced in run reports so sweep
    /// memory use is observable.
    pub fn live_high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), 3);
        q.schedule(SimTime(10), 1);
        q.schedule(SimTime(20), 2);
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert_eq!(q.pop(), Some((SimTime(20), 2)));
        assert_eq!(q.pop(), Some((SimTime(30), 3)));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((SimTime(5), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.len(), 1);
        assert_eq!(q.total_scheduled(), 1);
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.pop().is_none());
        assert!(q.peek_time().is_none());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(40), "d");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        q.schedule(SimTime(20), "b");
        q.schedule(SimTime(30), "c");
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), Some((SimTime(40), "d")));
    }

    #[test]
    fn far_timers_overflow_and_interleave_correctly() {
        let mut q = EventQueue::new();
        // One far timer (beyond the ~8.4 ms wheel horizon) and a stream of
        // near deliveries leading up to it.
        q.schedule(SimTime(100_000_000), u64::MAX);
        for i in 0..100u64 {
            q.schedule(SimTime(i * 900_000), i);
        }
        for i in 0..100u64 {
            let (t, e) = q.pop().unwrap();
            assert_eq!(t, SimTime(i * 900_000));
            assert_eq!(e, i);
        }
        assert_eq!(q.pop(), Some((SimTime(100_000_000), u64::MAX)));
        assert!(q.is_empty());
    }

    #[test]
    fn same_instant_insert_during_drain_preserves_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(50), 1);
        q.schedule(SimTime(50), 2);
        assert_eq!(q.pop(), Some((SimTime(50), 1)));
        // Insert at the instant currently being drained: must pop after the
        // earlier-seq tie, like the reference heap.
        q.schedule(SimTime(50), 3);
        assert_eq!(q.pop(), Some((SimTime(50), 2)));
        assert_eq!(q.pop(), Some((SimTime(50), 3)));
    }

    #[test]
    fn wheel_wraps_across_many_horizons() {
        let mut q = EventQueue::new();
        let horizon = NUM_BUCKETS << BUCKET_SHIFT;
        for lap in 0..5u64 {
            let mut expect = Vec::new();
            for i in 0..10u64 {
                let t = lap * 3 * horizon + i * 10_000;
                q.schedule(SimTime(t), (lap, i));
                expect.push((SimTime(t), (lap, i)));
            }
            // Drain each lap before scheduling the next, moving the cursor
            // far past previous window positions; order must survive the
            // wrap exactly.
            let drained: Vec<_> = (0..10).map(|_| q.pop().unwrap()).collect();
            assert_eq!(drained, expect, "lap {lap}");
        }
        assert!(q.is_empty());
        assert_eq!(q.total_scheduled(), 50);
    }

    #[test]
    fn high_water_tracks_peak_live_length() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.schedule(SimTime(i), i);
        }
        for _ in 0..10 {
            q.pop();
        }
        for i in 0..3u64 {
            q.schedule(SimTime(100 + i), i);
        }
        assert_eq!(q.live_high_water(), 10);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn pop_if_before_respects_the_window_boundary() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        q.schedule(SimTime(100_000_000), "far"); // overflow-heap entry
        assert_eq!(q.pop_if_before(SimTime(20)), Some((SimTime(10), "a")));
        // The boundary is exclusive: an event at exactly `limit` stays.
        assert_eq!(q.pop_if_before(SimTime(20)), None);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_if_before(SimTime(21)), Some((SimTime(20), "b")));
        // Far events stay put until a window reaches them, then drain.
        assert_eq!(q.pop_if_before(SimTime(50_000_000)), None);
        assert_eq!(
            q.pop_if_before(SimTime(200_000_000)),
            Some((SimTime(100_000_000), "far"))
        );
        assert!(q.pop_if_before(SimTime(u64::MAX)).is_none());
        // A bounded refusal must not disturb later ties or ordering.
        q.schedule(SimTime(30), "1");
        q.schedule(SimTime(30), "2");
        assert_eq!(q.pop_if_before(SimTime(30)), None);
        assert_eq!(q.pop(), Some((SimTime(30), "1")));
        assert_eq!(q.pop(), Some((SimTime(30), "2")));
    }

    #[test]
    fn slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..50u64 {
            for i in 0..8u64 {
                q.schedule(SimTime(round * 1_000 + i), i);
            }
            for _ in 0..8 {
                q.pop().unwrap();
            }
        }
        // 400 events flowed through, but the slab never grew past the peak
        // of 8 concurrently live events.
        assert!(q.slab.len() <= 8, "slab len {}", q.slab.len());
    }
}

//! NIC / bandwidth model.
//!
//! Following §V-B1 of the paper, the NIC delay of a message of size `m` bytes
//! over a link of bandwidth `b` bytes/second is `t_NIC = 2·m/b`: the message
//! is serialised once through the sender's NIC and once through the
//! receiver's.

use bamboo_types::SimDuration;

/// Bandwidth-proportional transmission delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NicModel {
    bytes_per_sec: u64,
}

impl NicModel {
    /// Creates a NIC model for a link of `bytes_per_sec` bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        Self { bytes_per_sec }
    }

    /// The configured bandwidth in bytes per second.
    pub fn bandwidth(&self) -> u64 {
        self.bytes_per_sec
    }

    /// Transmission delay for a message of `bytes` through *one* NIC.
    pub fn one_way(&self, bytes: usize) -> SimDuration {
        let ns = (bytes as u128 * 1_000_000_000u128) / self.bytes_per_sec as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// Total NIC delay for one hop (sender NIC + receiver NIC), i.e. `2·m/b`.
    pub fn transfer(&self, bytes: usize) -> SimDuration {
        self.one_way(bytes) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_is_twice_one_way() {
        let nic = NicModel::new(1_000_000); // 1 MB/s
        assert_eq!(nic.one_way(1_000), SimDuration::from_millis(1));
        assert_eq!(nic.transfer(1_000), SimDuration::from_millis(2));
    }

    #[test]
    fn scales_linearly_with_size() {
        let nic = NicModel::new(1_250_000_000); // 10 Gbit/s
        let small = nic.transfer(1_000);
        let large = nic.transfer(100_000);
        assert_eq!(large.as_nanos(), small.as_nanos() * 100);
    }

    #[test]
    fn zero_bytes_is_free() {
        let nic = NicModel::new(1_000);
        assert_eq!(nic.transfer(0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = NicModel::new(0);
    }

    #[test]
    fn typical_block_at_datacenter_bandwidth_is_sub_millisecond() {
        // 400 txs of 128 B payload ≈ 73.6 kB block at 10 Gbit/s.
        let nic = NicModel::new(1_250_000_000);
        let block_bytes = 400 * (128 + 56) + 200;
        assert!(nic.transfer(block_bytes) < SimDuration::from_millis(1));
    }
}

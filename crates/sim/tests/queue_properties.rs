//! Property tests for the slab/bucket-wheel [`EventQueue`]: over randomised
//! schedules — including same-instant ties, bursts, far timers and
//! interleaved schedule/pop sequences — the pop order must match a reference
//! binary-heap implementation exactly. Deterministic seed grid, so every
//! failure reproduces from the printed seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bamboo_sim::{EventQueue, SimRng};
use bamboo_types::SimTime;

/// The reference implementation: the `BinaryHeap<Reverse<(time, seq)>>`
/// design the slab queue replaced, kept here as the ordering oracle.
#[derive(Default)]
struct ReferenceHeap {
    heap: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
    seq: u64,
}

impl ReferenceHeap {
    fn schedule(&mut self, time: SimTime, event: u64) {
        self.heap.push(Reverse((time, self.seq, event)));
        self.seq += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        self.heap
            .pop()
            .map(|Reverse((time, _, event))| (time, event))
    }
}

/// Draws the next schedule time: a mix of same-instant ties, microsecond
/// deliveries, millisecond ticks and far timers, anchored at `now` so the
/// schedule moves forward like a real simulation.
fn next_time(rng: &mut SimRng, now: SimTime, last_scheduled: SimTime) -> SimTime {
    match rng.choose_index(10) {
        // Exact tie with the most recently scheduled event.
        0 | 1 => last_scheduled.max(now),
        // Same-bucket neighbours (sub-microsecond apart).
        2 | 3 => SimTime(now.as_nanos() + rng.choose_index(2_000) as u64),
        // Near-future delivery (µs scale).
        4..=7 => SimTime(now.as_nanos() + 1_000 + rng.choose_index(800_000) as u64),
        // Workload-tick scale.
        8 => SimTime(now.as_nanos() + rng.choose_index(2_000_000) as u64),
        // Far timer, well beyond the wheel horizon.
        _ => SimTime(now.as_nanos() + 20_000_000 + rng.choose_index(500_000_000) as u64),
    }
}

#[test]
fn pop_order_matches_reference_heap_over_randomised_schedules() {
    for seed in 0u64..20 {
        let mut rng = SimRng::new(seed * 7919 + 3);
        let mut queue: EventQueue<u64> = EventQueue::new();
        let mut reference = ReferenceHeap::default();
        let mut now = SimTime::ZERO;
        let mut last_scheduled = SimTime::ZERO;
        let mut event_id = 0u64;
        let mut live = 0i64;

        for _ in 0..5_000 {
            // Bias towards scheduling while the queue is shallow and towards
            // popping while it is deep, so both regimes are exercised.
            let schedule = live < 5 || rng.choose_index(3) > 0;
            if schedule {
                let burst = 1 + rng.choose_index(4);
                for _ in 0..burst {
                    let time = next_time(&mut rng, now, last_scheduled);
                    last_scheduled = time;
                    queue.schedule(time, event_id);
                    reference.schedule(time, event_id);
                    event_id += 1;
                    live += 1;
                }
            } else {
                let got = queue.pop();
                let want = reference.pop();
                assert_eq!(got, want, "seed {seed}: mid-run pop diverged");
                if let Some((time, _)) = got {
                    assert!(time >= now, "seed {seed}: time went backwards");
                    now = time;
                    live -= 1;
                }
            }
        }
        // Drain both completely; order must stay identical to the end.
        loop {
            let got = queue.pop();
            let want = reference.pop();
            assert_eq!(got, want, "seed {seed}: drain pop diverged");
            if got.is_none() {
                break;
            }
        }
        assert!(queue.is_empty());
        assert_eq!(queue.total_scheduled(), event_id);
    }
}

#[test]
fn peek_time_always_matches_the_next_pop() {
    let mut rng = SimRng::new(99);
    let mut queue: EventQueue<u64> = EventQueue::new();
    let mut now = SimTime::ZERO;
    let mut last = SimTime::ZERO;
    for i in 0..2_000u64 {
        let time = next_time(&mut rng, now, last);
        last = time;
        queue.schedule(time, i);
        if i % 3 == 0 {
            let peeked = queue.peek_time().expect("queue is non-empty");
            let (popped, _) = queue.pop().expect("queue is non-empty");
            assert_eq!(peeked, popped);
            now = popped;
        }
    }
    let mut prev = SimTime::ZERO;
    while let Some(peeked) = queue.peek_time() {
        let (popped, _) = queue.pop().unwrap();
        assert_eq!(peeked, popped);
        assert!(popped >= prev);
        prev = popped;
    }
}

#[test]
fn high_water_mark_is_exact_under_interleaving() {
    let mut queue: EventQueue<u64> = EventQueue::new();
    let mut live = 0usize;
    let mut peak = 0usize;
    let mut rng = SimRng::new(5);
    let mut t = 0u64;
    for i in 0..1_000u64 {
        t += rng.choose_index(100_000) as u64;
        queue.schedule(SimTime(t), i);
        live += 1;
        peak = peak.max(live);
        if rng.choose_index(2) == 0 {
            queue.pop().unwrap();
            live -= 1;
        }
    }
    assert_eq!(queue.live_high_water(), peak);
    assert_eq!(queue.len(), live);
}

//! Property tests for per-link topology sampling (deterministic seed grids,
//! no external property-testing framework):
//!
//! 1. **Determinism** — the same seed produces bit-identical delay streams,
//!    whatever the region/override structure.
//! 2. **Scalar-model agreement** — a uniform (override-free) topology is
//!    indistinguishable from the pre-topology scalar model: the sampled
//!    stream equals a from-first-principles reference implementation of
//!    `max(floor, Normal(mean, std))`, draw for draw. Layering regions whose
//!    distributions all equal the default changes nothing either.
//! 3. **Symmetric by default** — without per-link overrides or explicit
//!    asymmetric matrix entries, `dist(a, b) == dist(b, a)` for every pair.

use bamboo_sim::{DelayDist, LatencyModel, SimRng, Topology};
use bamboo_types::{NodeId, SimDuration, SimTime};

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// A 4-region, 16-node WAN-ish topology derived from a seed so the grid
/// covers different shapes.
fn wan_topology(seed: u64) -> Topology {
    let mut topo = Topology::new(DelayDist::new(us(250), us(50)));
    let regions: Vec<usize> = (0..4)
        .map(|r| {
            topo.add_region(
                &format!("r{r}"),
                (0..4).map(|i| (r * 4 + i) as u64),
                DelayDist::new(us(200 + 100 * r as u64), us(20 + 10 * (seed % 5))),
            )
        })
        .collect();
    for (i, &a) in regions.iter().enumerate() {
        for &b in &regions[i + 1..] {
            let mean = ms(10 + 7 * ((seed + a as u64 + 3 * b as u64) % 11));
            topo.set_inter(a, b, DelayDist::new(mean, us(500)));
        }
    }
    topo.symmetrize();
    topo
}

/// Walks a deterministic schedule of (from, to, now) probes and collects the
/// sampled delays.
fn sample_stream(model: &LatencyModel, seed: u64, probes: usize) -> Vec<Option<SimDuration>> {
    let mut rng = SimRng::new(seed);
    let mut schedule = SimRng::new(seed ^ 0xDEAD_BEEF);
    (0..probes)
        .map(|i| {
            let from = NodeId(schedule.uniform_range(0, 16));
            let to = NodeId(schedule.uniform_range(0, 16));
            model.sample(&mut rng, from, to, SimTime(i as u64 * 1_000_000))
        })
        .collect()
}

#[test]
fn same_seed_gives_identical_delay_streams() {
    for seed in [1u64, 7, 42, 2021, 0xFFFF] {
        let a = LatencyModel::with_topology(wan_topology(seed));
        let b = LatencyModel::with_topology(wan_topology(seed));
        assert_eq!(
            sample_stream(&a, seed, 500),
            sample_stream(&b, seed, 500),
            "seed {seed} diverged"
        );
    }
}

#[test]
fn uniform_topology_matches_the_scalar_reference_model() {
    // The reference implementation of the scalar model:
    // delay = max(link_floor, Normal(mean, std)) with
    // link_floor = max(1us, mean/4, mean - 3*std) — the per-class clamp the
    // parallel engine's lookahead window is derived from — and the global
    // floor for self-delivery.
    for seed in [3u64, 11, 99, 4096] {
        let mean = us(250 + 10 * (seed % 7));
        let std = us(50);
        let model = LatencyModel::new(mean, std);
        let mut model_rng = SimRng::new(seed);
        let mut reference_rng = SimRng::new(seed);
        let mut schedule = SimRng::new(seed ^ 1);
        let link_floor = us(1)
            .as_nanos()
            .max(mean.as_nanos() / 4)
            .max(mean.as_nanos().saturating_sub(3 * std.as_nanos()));
        for i in 0..2_000 {
            let from = NodeId(schedule.uniform_range(0, 8));
            let to = NodeId(schedule.uniform_range(0, 8));
            let sampled = model
                .sample(&mut model_rng, from, to, SimTime(i))
                .expect("no faults configured");
            let base = reference_rng
                .normal(mean.as_nanos() as f64, std.as_nanos() as f64)
                .max(link_floor as f64);
            let expected = if from == to {
                us(1)
            } else {
                SimDuration::from_nanos(base as u64)
            };
            assert_eq!(sampled, expected, "seed {seed}, probe {i}");
        }
    }
}

#[test]
fn all_default_regions_are_indistinguishable_from_uniform() {
    // A topology whose regions all use the default distribution must sample
    // exactly like the uniform one: region structure without heterogeneity
    // is a no-op.
    let default = DelayDist::new(us(300), us(40));
    let uniform = LatencyModel::with_topology(Topology::new(default));
    let mut regioned_topo = Topology::new(default);
    let a = regioned_topo.add_region("a", [0, 1, 2, 3], default);
    let b = regioned_topo.add_region("b", [4, 5, 6, 7], default);
    regioned_topo.set_inter(a, b, default);
    regioned_topo.symmetrize();
    let regioned = LatencyModel::with_topology(regioned_topo);
    for seed in [5u64, 17, 1234] {
        assert_eq!(
            sample_stream(&uniform, seed, 1_000),
            sample_stream(&regioned, seed, 1_000),
            "seed {seed}"
        );
    }
}

#[test]
fn override_free_topologies_are_symmetric() {
    for seed in [2u64, 13, 77, 900] {
        let topo = wan_topology(seed);
        for from in 0..16u64 {
            for to in 0..16u64 {
                assert_eq!(
                    topo.dist(NodeId(from), NodeId(to)),
                    topo.dist(NodeId(to), NodeId(from)),
                    "seed {seed}: link {from} <-> {to} asymmetric without overrides"
                );
            }
        }
    }
}

#[test]
fn asymmetric_overrides_break_symmetry_only_where_registered() {
    let mut topo = wan_topology(4);
    topo.override_link(NodeId(0), NodeId(9), DelayDist::new(ms(120), us(100)));
    assert_eq!(topo.dist(NodeId(0), NodeId(9)).mean, ms(120));
    assert_ne!(
        topo.dist(NodeId(0), NodeId(9)),
        topo.dist(NodeId(9), NodeId(0)),
        "registered override is one-directional"
    );
    // Every other pair stays symmetric.
    for from in 0..16u64 {
        for to in 0..16u64 {
            if (from, to) == (0, 9) || (from, to) == (9, 0) {
                continue;
            }
            assert_eq!(
                topo.dist(NodeId(from), NodeId(to)),
                topo.dist(NodeId(to), NodeId(from)),
            );
        }
    }
}

//! Reproduce (a compressed version of) the paper's responsiveness experiment
//! interactively: inject a network-fluctuation window, crash a node, and watch
//! how a responsive protocol (HotStuff) and a non-responsive one (2CHS) behave
//! with an aggressive 10 ms timeout.
//!
//! ```bash
//! cargo run --release --example responsiveness
//! ```

use bamboo::core::{FluctuationWindow, RunOptions, SimRunner};
use bamboo::types::{Config, NodeId, ProtocolKind, SimDuration, SimTime, TypeError};

fn main() -> Result<(), TypeError> {
    let fluctuation = FluctuationWindow {
        start: SimTime::ZERO + SimDuration::from_secs(2),
        end: SimTime::ZERO + SimDuration::from_secs(4),
        min_extra: SimDuration::from_millis(10),
        max_extra: SimDuration::from_millis(100),
    };
    let crash_at = SimTime::ZERO + SimDuration::from_secs(5);

    for protocol in [ProtocolKind::HotStuff, ProtocolKind::TwoChainHotStuff] {
        let config = Config::builder()
            .nodes(4)
            .block_size(400)
            .payload_size(128)
            .runtime(SimDuration::from_secs(7))
            .timeout(SimDuration::from_millis(10))
            .arrival_rate(20_000.0)
            .seed(9)
            .build()?;
        let options = RunOptions {
            fluctuations: vec![fluctuation],
            silence_node_from: Some((NodeId(0), crash_at)),
            series_bucket: SimDuration::from_millis(500),
            ..Default::default()
        };
        let report = SimRunner::new(config, protocol, options).run();
        println!(
            "\n{} (responsive: {}), timeout 10 ms — committed {} txs, {} timeout view changes",
            protocol.label(),
            protocol == ProtocolKind::HotStuff,
            report.committed_txs,
            report.timeout_view_changes
        );
        println!("throughput per 500 ms bucket (ktx/s):");
        print!("  ");
        for sample in &report.throughput_series {
            print!("{:>5.0}", sample.tx_per_sec / 1_000.0);
        }
        println!();
        println!("  (fluctuation at 2–4 s, node 0 crashes at 5 s)");
    }

    println!(
        "\ntakeaway (matches the paper): with a tight timeout both protocols stall during\nthe fluctuation; the responsive protocol recovers at network speed as soon as the\nnetwork settles, while the non-responsive one needs its timeouts to line up."
    );
    Ok(())
}

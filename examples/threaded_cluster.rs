//! Run an actually concurrent in-process cluster: each replica on its own OS
//! thread, connected by channels — the "live" counterpart to the
//! deterministic simulator.
//!
//! ```bash
//! cargo run --release --example threaded_cluster
//! ```

use std::time::Duration;

use bamboo::core::threaded::ThreadedCluster;
use bamboo::types::{Config, ProtocolKind, SimDuration, TypeError};

fn main() -> Result<(), TypeError> {
    let config = Config::builder()
        .nodes(4)
        .block_size(100)
        .timeout(SimDuration::from_millis(50))
        .build()?;

    println!("spawning a 4-thread two-chain HotStuff cluster...");
    let cluster = ThreadedCluster::spawn(config, ProtocolKind::TwoChainHotStuff);

    // Feed it 2,000 transactions spread round-robin over the replicas and let
    // it run for half a second of wall-clock time.
    cluster.submit_round_robin(2_000, 64);
    cluster.run_for(Duration::from_millis(500));
    println!(
        "committed so far (observed at replica 0): {}",
        cluster.committed_txs()
    );

    let report = cluster.shutdown();
    println!("\n== shutdown report ==");
    println!(
        "committed blocks per replica: {:?}",
        report.committed_blocks
    );
    println!("highest view reached        : {}", report.max_view);
    println!(
        "ledgers pairwise consistent : {}",
        report.ledgers_consistent
    );
    assert!(report.ledgers_consistent);
    Ok(())
}

//! Quickstart: run a 4-node HotStuff deployment on the deterministic
//! simulator and print what it committed.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use bamboo::core::{RunOptions, SimRunner};
use bamboo::types::{Config, ProtocolKind, SimDuration, TypeError};

fn main() -> Result<(), TypeError> {
    // A 4-replica deployment with the paper's Table-I defaults: block size
    // 400, 100 ms view timeout, open-loop clients at 20k tx/s.
    let config = Config::builder()
        .nodes(4)
        .block_size(400)
        .payload_size(128)
        .runtime(SimDuration::from_secs(2))
        .arrival_rate(20_000.0)
        .seed(7)
        .build()?;

    println!("running chained HotStuff on {} replicas...", config.nodes);
    let report = SimRunner::new(config, ProtocolKind::HotStuff, RunOptions::default()).run();

    println!("\n== results ==");
    println!("{}", report.summary());
    println!("committed blocks      : {}", report.committed_blocks);
    println!("committed transactions: {}", report.committed_txs);
    println!("views advanced        : {}", report.views_advanced);
    println!(
        "chain growth rate     : {:.3} blocks/view",
        report.chain_growth_rate
    );
    println!("block interval        : {:.2} views", report.block_interval);
    println!("mean latency          : {:.2} ms", report.latency.mean_ms);
    println!("p99 latency           : {:.2} ms", report.latency.p99_ms);
    println!("messages sent         : {}", report.messages_sent);
    println!("safety violations     : {}", report.safety_violations);
    assert_eq!(report.safety_violations, 0);
    Ok(())
}

//! Prototype a brand-new chained-BFT protocol on top of the framework —
//! Bamboo's headline use case ("developers can quickly prototype their own
//! cBFT protocols by defining voting/commit rules").
//!
//! The toy protocol below, "EagerChain", uses a *one-chain* commit rule: a
//! block commits as soon as it is certified. That is unsafe against Byzantine
//! leaders (which is exactly what the output demonstrates under a forking
//! attack), but it shows that a new protocol is nothing more than a `Safety`
//! implementation plus ~100 lines.
//!
//! ```bash
//! cargo run --release --example custom_protocol
//! ```

use bamboo::forest::BlockForest;
use bamboo::protocols::{build_block, ProposalInput, Safety, VoteDestination};
use bamboo::types::{Block, BlockId, ProtocolKind, QuorumCert, View};

/// A deliberately aggressive protocol: commit on a one-chain.
struct EagerChain {
    last_voted_view: View,
}

impl EagerChain {
    fn new() -> Self {
        Self {
            last_voted_view: View::GENESIS,
        }
    }
}

impl Safety for EagerChain {
    fn kind(&self) -> ProtocolKind {
        // Reuse an existing label for reporting purposes; a production
        // protocol would extend the enum.
        ProtocolKind::TwoChainHotStuff
    }

    fn vote_destination(&self) -> VoteDestination {
        VoteDestination::NextLeader
    }

    // Proposing rule: extend the block certified by the highest QC.
    fn propose(&mut self, input: &ProposalInput, forest: &BlockForest) -> Option<Block> {
        let high_qc = forest.high_qc().clone();
        build_block(input, forest, high_qc.block, high_qc)
    }

    // Voting rule: vote for anything newer than the last voted view.
    fn should_vote(&mut self, block: &Block, _forest: &BlockForest) -> bool {
        if block.view <= self.last_voted_view {
            return false;
        }
        self.last_voted_view = block.view;
        true
    }

    fn update_state(&mut self, _qc: &QuorumCert, _forest: &BlockForest) {}

    // Durable-restart hooks: expose the vote watermark so a replica running
    // this protocol could persist and restore it across a crash.
    fn voted_view(&self) -> View {
        self.last_voted_view
    }

    fn restore_voted_view(&mut self, view: View) {
        self.last_voted_view = self.last_voted_view.max(view);
    }

    // Commit rule: a certified block commits immediately (one-chain!).
    fn try_commit(&mut self, qc: &QuorumCert, forest: &BlockForest) -> Option<BlockId> {
        forest.get(qc.block).map(|b| b.id)
    }
}

fn main() {
    // Drive the custom protocol directly against the shared data structures,
    // exactly the way the built-in protocols are unit-tested: build a chain,
    // certify blocks, and watch the commit rule fire.
    let mut forest = BlockForest::new();
    let mut protocol = EagerChain::new();

    println!("EagerChain: a custom one-chain-commit protocol built on the framework\n");
    let mut parent = BlockId::GENESIS;
    for view in 1..=5u64 {
        let input = ProposalInput {
            view: View(view),
            proposer: bamboo::types::NodeId(view % 4),
            payload: vec![],
        };
        let block = protocol.propose(&input, &forest).expect("proposal");
        // In this walkthrough the proposer immediately gets a QC (as if a
        // quorum voted); the point is to watch the rules interact.
        let qc = QuorumCert {
            block: block.id,
            view: block.view,
            signatures: Default::default(),
        };
        println!(
            "view {view}: proposed {} on parent {}",
            block.id, block.parent
        );
        let votes = protocol.should_vote(&block, &forest);
        forest.insert(block.clone()).expect("insert");
        forest.register_qc(qc.clone()).expect("certify");
        protocol.update_state(&qc, &forest);
        if let Some(commit) = protocol.try_commit(&qc, &forest) {
            let newly = forest.commit(commit).expect("commit");
            println!(
                "          voted={votes}, committed {} block(s) up to {}",
                newly.len(),
                commit
            );
        }
        parent = block.id;
    }
    let _ = parent;

    println!(
        "\nEagerChain commits after a single certification — lower latency than 2CHS, but\nwithout a lock it has no forking resilience: the framework makes such trade-offs\neasy to prototype and measure before trusting them."
    );
}

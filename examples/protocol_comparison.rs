//! Compare HotStuff, two-chain HotStuff and Streamlet head-to-head on the
//! same workload — the core use case of the Bamboo framework.
//!
//! ```bash
//! cargo run --release --example protocol_comparison
//! ```

use bamboo::core::{Benchmarker, RunOptions, SweepOptions};
use bamboo::model::PerfModel;
use bamboo::types::{Config, ProtocolKind, SimDuration, TypeError};

fn main() -> Result<(), TypeError> {
    let config = Config::builder()
        .nodes(4)
        .block_size(400)
        .payload_size(128)
        .runtime(SimDuration::from_millis(800))
        .seed(3)
        .build()?;

    println!("protocol | offered (tx/s) | throughput (ktx/s) | latency (ms) | p99 (ms)");
    println!("{:-<78}", "");
    for protocol in ProtocolKind::evaluated() {
        let bench = Benchmarker::new(config.clone(), protocol, RunOptions::default()).with_sweep(
            SweepOptions {
                start_rate: 5_000.0,
                growth: 2.0,
                max_points: 5,
                ..Default::default()
            },
        );
        let points = bench.sweep();
        for point in &points {
            println!(
                "{:<8} | {:>14.0} | {:>18.1} | {:>12.2} | {:>8.2}",
                protocol.label(),
                point.offered_tx_per_sec,
                point.throughput_tx_per_sec / 1_000.0,
                point.latency_ms,
                point.p99_latency_ms
            );
        }
        println!(
            "{:<8} | peak throughput {:.1} ktx/s, unloaded latency {:.2} ms",
            protocol.label(),
            Benchmarker::peak_throughput(&points) / 1_000.0,
            Benchmarker::base_latency(&points)
        );
        println!("{:-<78}", "");
    }

    // The analytical model gives a back-of-the-envelope sanity check.
    println!("\nanalytical model (unloaded latency prediction):");
    for protocol in ProtocolKind::evaluated() {
        let params = bamboo_bench_params(&config);
        let model = PerfModel::new(protocol, params);
        println!(
            "  {:<5} t_s = {:.3} ms, commit after {:.3} ms, predicted latency {:.3} ms",
            protocol.label(),
            model.params.t_s() * 1e3,
            model.t_commit() * 1e3,
            model.latency(5_000.0) * 1e3
        );
    }
    Ok(())
}

/// Maps the simulator configuration onto model parameters (same mapping the
/// benches use).
fn bamboo_bench_params(config: &Config) -> bamboo::model::ModelParams {
    bamboo::model::ModelParams {
        nodes: config.nodes,
        block_size: config.block_size,
        tx_bytes: bamboo::types::Transaction::HEADER_BYTES + config.payload_size,
        block_overhead_bytes: bamboo::types::Block::HEADER_BYTES + 40 + 40 * config.quorum(),
        link_mean: config.link_latency_mean.as_secs_f64(),
        link_std: config.link_latency_std.as_secs_f64(),
        client_rtt: 2.0 * config.link_latency_mean.as_secs_f64(),
        t_cpu: config.cpu_delay.as_secs_f64(),
        bandwidth: config.bandwidth_bytes_per_sec as f64,
    }
}

//! Demonstrates the two Byzantine strategies of the paper — the forking
//! attack and the silence attack — and how differently the three protocols
//! tolerate them (chain growth rate, block interval, throughput).
//!
//! ```bash
//! cargo run --release --example byzantine_attacks
//! ```

use bamboo::core::{Benchmarker, RunOptions};
use bamboo::types::{ByzantineStrategy, Config, ProtocolKind, SimDuration, TypeError};

fn run(strategy: ByzantineStrategy, byz: usize, protocol: ProtocolKind) -> Result<(), TypeError> {
    let mut config = Config::builder()
        .nodes(16)
        .block_size(200)
        .payload_size(64)
        .runtime(SimDuration::from_millis(600))
        .timeout(SimDuration::from_millis(50))
        .seed(11)
        .build()?;
    config.byzantine_strategy = strategy;
    config.byz_nodes = byz;
    let report = Benchmarker::new(config, protocol, RunOptions::default()).run_at(10_000.0);
    println!(
        "  {:<5} byz={byz} ({strategy}): throughput {:>8.0} tx/s | CGR {:>4.2} | BI {:>4.2} | latency {:>7.2} ms | safety violations {}",
        protocol.label(),
        report.throughput_tx_per_sec,
        report.chain_growth_rate,
        report.block_interval,
        report.latency.mean_ms,
        report.safety_violations,
    );
    assert_eq!(
        report.safety_violations, 0,
        "attacks must never break safety"
    );
    Ok(())
}

fn main() -> Result<(), TypeError> {
    println!("baseline (no Byzantine nodes):");
    for protocol in ProtocolKind::evaluated() {
        run(ByzantineStrategy::Honest, 0, protocol)?;
    }

    println!("\nforking attack (4 of 16 nodes propose conflicting blocks):");
    for protocol in ProtocolKind::evaluated() {
        run(ByzantineStrategy::Forking, 4, protocol)?;
    }

    println!("\nsilence attack (4 of 16 nodes withhold their proposals):");
    for protocol in ProtocolKind::evaluated() {
        run(ByzantineStrategy::Silence, 4, protocol)?;
    }

    println!(
        "\ntakeaway (matches the paper): Streamlet's longest-chain voting makes it immune\nto forking (CGR stays at 1); two-chain HotStuff loses less than HotStuff under\nforking because only one block can be overwritten; the silence attack hurts every\nprotocol because it wastes whole views."
    );
    Ok(())
}

//! # Bamboo-rs
//!
//! A Rust reproduction of **Bamboo**, the prototyping and evaluation framework
//! for chained-BFT (cBFT) protocols from *Dissecting the Performance of
//! Chained-BFT* (ICDCS 2021).
//!
//! This crate is a convenience facade that re-exports the workspace crates
//! under one roof. The layering is:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `bamboo-types` | blocks, QCs, messages, Table-I configuration |
//! | [`crypto`] | `bamboo-crypto` | SHA-256, simulated signatures, aggregation |
//! | [`forest`] | `bamboo-forest` | block forest, chain predicates, ledger |
//! | [`mempool`] | `bamboo-mempool` | bidirectional-queue memory pool |
//! | [`pacemaker`] | `bamboo-pacemaker` | view synchronisation, leader election |
//! | [`protocols`] | `bamboo-protocols` | Safety rules: HotStuff, 2CHS, Streamlet, … + attacks |
//! | [`sim`] | `bamboo-sim` | discrete-event engine, latency/NIC/CPU models |
//! | [`core`] | `bamboo-core` | replica, quorum, workload, runner, benchmarker, threaded cluster |
//! | [`net`] | `bamboo-net` | TCP transport: framing, reconnecting peers, loopback clusters |
//! | [`model`] | `bamboo-model` | analytical queuing model (§V of the paper) |
//!
//! # Example
//!
//! Run a 4-node HotStuff deployment on the deterministic simulator and check
//! that it commits transactions:
//!
//! ```
//! use bamboo::core::{RunOptions, SimRunner};
//! use bamboo::types::{Config, ProtocolKind, SimDuration};
//!
//! let config = Config::builder()
//!     .nodes(4)
//!     .block_size(100)
//!     .runtime(SimDuration::from_millis(200))
//!     .arrival_rate(5_000.0)
//!     .build()?;
//! let report = SimRunner::new(config, ProtocolKind::HotStuff, RunOptions::default()).run();
//! assert!(report.committed_txs > 0);
//! assert_eq!(report.safety_violations, 0);
//! # Ok::<(), bamboo::types::TypeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core data types: blocks, certificates, messages, configuration.
pub mod types {
    pub use bamboo_types::*;
}

/// Cryptographic primitives (SHA-256, simulated signatures).
pub mod crypto {
    pub use bamboo_crypto::*;
}

/// Block forest storage and the committed ledger.
pub mod forest {
    pub use bamboo_forest::*;
}

/// The memory pool.
pub mod mempool {
    pub use bamboo_mempool::*;
}

/// Pacemaker (view synchronisation) and leader election.
pub mod pacemaker {
    pub use bamboo_pacemaker::*;
}

/// Chained-BFT protocol implementations and Byzantine strategies.
pub mod protocols {
    pub use bamboo_protocols::*;
}

/// Discrete-event simulation substrate.
pub mod sim {
    pub use bamboo_sim::*;
}

/// Replica, runner, workload generation and benchmarking facilities.
pub mod core {
    pub use bamboo_core::*;
}

/// TCP transport backend: framed sockets, reconnecting peer links, loopback
/// clusters (same-process and one-process-per-replica).
pub mod net {
    pub use bamboo_net::*;
}

/// Analytical performance model.
pub mod model {
    pub use bamboo_model::*;
}

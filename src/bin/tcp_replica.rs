//! Replica process for the multi-process TCP loopback mode.
//!
//! Not meant to be invoked by hand: a driver ([`bamboo::net::ProcessCluster`])
//! spawns it with `BAMBOO_TCP_REPLICA_SPEC` set to a JSON spec, reads the
//! `PORT <p>` line it prints, distributes the peer table over TCP, and
//! collects the final `REPORT <json>` line on shutdown. Run by the
//! `tests/tcp_agreement.rs` multi-process smoke test and usable from the
//! command line for manual cluster experiments (see README).

fn main() {
    if !bamboo::net::maybe_run_replica() {
        eprintln!(
            "tcp_replica: set {} to a JSON replica spec (this binary is \
             normally spawned by a ProcessCluster driver, not by hand)",
            bamboo::net::REPLICA_ENV
        );
        std::process::exit(2);
    }
}
